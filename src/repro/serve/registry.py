"""Versioned model-artifact registry for the scoring service.

A trained ``f_theta`` is only servable if everything that shaped its
predictions travels with the weights: the graph it was fitted on (pinned
by the :func:`repro.perf.cache.graph_fingerprint` content digest), the
metric-normalization scheme the targets used, the FoM weighting and
feasible-region bound scoring applies, and the exact
:class:`~repro.model.gnn3d.Gnn3dConfig`.  The registry persists all of
it per version::

    <root>/<name>/v0001/weights.npz     # repro.nn.serialization archive
    <root>/<name>/v0001/manifest.json   # ModelManifest

Loads are integrity-checked end to end — manifest schema version, a
SHA-256 digest of the weights archive, parameter-name/shape agreement
(via :func:`repro.nn.serialization.load_state`), normalization-scheme
identity, and (when a serving graph is supplied) graph-fingerprint
equality.  Every violation raises a typed
:class:`~repro.reliability.errors.ServeError` so callers can tell a
corrupt artifact from an unroutable request.

Durability and rollover support:

* **atomic saves** — a version is assembled in a hidden ``.tmp-`` sibling
  and renamed into place, so a crash mid-save can never leave a
  half-written ``v000N`` that :meth:`ModelRegistry.latest` would serve;
* **tolerant listing** — :meth:`versions`/:meth:`latest` skip entries
  whose manifest is missing or unparseable (counting them under
  ``serve_registry_skipped_total``) instead of letting one corrupt
  directory take down every load of the model;
* **quarantine** — :meth:`quarantine` stamps a version with a
  ``quarantined.json`` marker; quarantined versions disappear from
  :meth:`versions`/:meth:`latest` (the cluster's rollback path) while
  the artifact stays on disk for postmortem.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.model.gnn3d import Gnn3d, Gnn3dConfig
from repro.nn.serialization import load_state, save_state
from repro.obs import NULL_CONTEXT, RunContext
from repro.perf.cache import graph_fingerprint
from repro.reliability.errors import ServeError
from repro.simulation.metrics import METRIC_NAMES, FoMWeights

#: Schema version of registry manifests; bump on incompatible changes.
REGISTRY_SCHEMA_VERSION = 1

#: Identity of the target-normalization transform the model was trained
#: on (:meth:`repro.simulation.metrics.PerformanceMetrics.to_normalized`).
#: A served model whose manifest names a different scheme must not be
#: scored — its outputs would be denormalized with the wrong inverse.
NORMALIZATION_SCHEME = "performance-metrics.to_normalized.v1"

#: Serving precisions a manifest may declare.  Weights are always
#: persisted float64; ``precision`` is the *execution* dtype the scoring
#: service casts to after an integrity-checked load.
PRECISIONS = ("float64", "float32")

#: Documented parity contract of the float32 scoring path: predictions
#: agree with the float64 forward to within this relative tolerance
#: (relative to the O(1) normalized-metric scale — enforced as
#: ``|f32 - f64| <= FLOAT32_PARITY_RTOL * max(1, |f64|)``).  Measured
#: error on the built-in OTAs is ~1e-6; the bound leaves two decades of
#: margin for trained weights.  float64 stays <1e-10 of the unbatched
#: seed forward (see ``tests/test_forward_blocking.py``).
FLOAT32_PARITY_RTOL = 1e-4

#: Manifest fields absent from pre-``precision`` (still schema v1)
#: manifests; they default rather than fail the missing-field check.
_OPTIONAL_FIELDS = frozenset({"precision"})

_WEIGHTS_FILE = "weights.npz"
_MANIFEST_FILE = "manifest.json"
_QUARANTINE_FILE = "quarantined.json"

#: Committed version directories: ``v`` + zero-padded ordinal.  The
#: ``.tmp-`` staging siblings of an in-progress save never match, so a
#: crashed save is invisible to :meth:`ModelRegistry.versions`.
_VERSION_RE = re.compile(r"^v\d{4,}$")


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class ModelManifest:
    """Everything needed to rebuild and trust one checkpoint.

    Attributes:
        name: registry model name.
        version: registry version string (``v0001`` ...).
        weights_sha256: SHA-256 of the weights archive at save time.
        graph_fingerprint: content fingerprint of the training graph
            (see :func:`repro.perf.cache.graph_fingerprint`).
        ap_dim / module_dim: feature widths the model was built with.
        gnn_config: :class:`Gnn3dConfig` fields as a plain dict.
        c_max: guidance feasible-region bound the database sampled in.
        fom_weights: raw (unsigned) FoM weights, metric order.
        metric_names: metric reporting order at training time.
        normalization: target-normalization scheme identifier.
        precision: serving execution dtype (one of :data:`PRECISIONS`);
            weights are stored float64 and cast on load.
    """

    name: str
    version: str
    weights_sha256: str
    graph_fingerprint: tuple
    ap_dim: int
    module_dim: int
    gnn_config: dict
    c_max: float
    fom_weights: tuple
    metric_names: tuple
    normalization: str = NORMALIZATION_SCHEME
    precision: str = PRECISIONS[0]
    schema_version: int = REGISTRY_SCHEMA_VERSION

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["graph_fingerprint"] = list(self.graph_fingerprint)
        out["fom_weights"] = list(self.fom_weights)
        out["metric_names"] = list(self.metric_names)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ModelManifest":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ServeError(
                f"manifest carries unknown fields {sorted(unknown)}",
                stage="serve")
        missing = fields - set(data) - _OPTIONAL_FIELDS
        if missing:
            raise ServeError(
                f"manifest is missing fields {sorted(missing)}",
                stage="serve")
        data = dict(data)
        data["graph_fingerprint"] = tuple(data["graph_fingerprint"])
        data["fom_weights"] = tuple(data["fom_weights"])
        data["metric_names"] = tuple(data["metric_names"])
        return cls(**data)

    def signed_fom_vector(self):
        """The signed ``w_FoM`` vector scoring applies to predictions."""
        return FoMWeights(*self.fom_weights).as_signed_vector()


class ModelRegistry:
    """Filesystem-backed store of versioned scoring checkpoints.

    Args:
        root: registry root directory (created lazily on first save).
        obs: observability context; skipped-entry and quarantine events
            are counted through it (``serve_registry_skipped_total``,
            ``serve_quarantine_total``).
    """

    def __init__(self, root: str | Path,
                 obs: RunContext | None = None) -> None:
        self.root = Path(root)
        self.obs = obs if obs is not None else NULL_CONTEXT

    # -- layout -------------------------------------------------------------------

    def _version_dir(self, name: str, version: str) -> Path:
        return self.root / name / version

    def _committed(self, path: Path) -> bool:
        """Whether a version directory is listable (sound manifest,
        not quarantined); counts the corrupt ones it skips."""
        manifest = path / _MANIFEST_FILE
        try:
            json.loads(manifest.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # Missing or torn manifest: a crashed writer or bit rot.
            # One bad directory must not take the whole model offline.
            self.obs.counter("serve_registry_skipped_total",
                             reason="bad_manifest").inc()
            return False
        if (path / _QUARANTINE_FILE).exists():
            self.obs.counter("serve_registry_skipped_total",
                             reason="quarantined").inc()
            return False
        return True

    def versions(self, name: str) -> list[str]:
        """Servable versions of a model, oldest first; [] when unknown.

        Skips (and counts) directories with a missing/unparseable
        manifest and quarantined versions — see :meth:`all_versions`
        for the unfiltered listing.
        """
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        return sorted(p.name for p in model_dir.iterdir()
                      if p.is_dir() and _VERSION_RE.match(p.name)
                      and self._committed(p))

    def all_versions(self, name: str) -> list[str]:
        """Every committed version directory, servable or not."""
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        return sorted(p.name for p in model_dir.iterdir()
                      if p.is_dir() and _VERSION_RE.match(p.name))

    def latest(self, name: str) -> str:
        versions = self.versions(name)
        if not versions:
            raise ServeError(
                f"no servable versions of model {name!r} in registry "
                f"{self.root}", stage="serve", details={"name": name})
        return versions[-1]

    # -- quarantine ---------------------------------------------------------------

    def quarantine(self, name: str, version: str, reason: str) -> Path:
        """Mark a version unservable; returns the marker path.

        The artifact stays on disk for postmortem, but the version
        disappears from :meth:`versions`/:meth:`latest` so rollbacks
        and restarts can never pick it up again.
        """
        target = self._version_dir(name, version)
        if not target.is_dir():
            raise ServeError(
                f"cannot quarantine {name}@{version}: no such version in "
                f"registry {self.root}", stage="serve",
                details={"name": name, "version": version})
        marker = target / _QUARANTINE_FILE
        marker.write_text(
            json.dumps({"name": name, "version": version, "reason": reason},
                       indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        self.obs.counter("serve_quarantine_total", model=name).inc()
        return marker

    def is_quarantined(self, name: str, version: str) -> bool:
        return (self._version_dir(name, version) / _QUARANTINE_FILE).exists()

    def quarantine_reason(self, name: str, version: str) -> str | None:
        marker = self._version_dir(name, version) / _QUARANTINE_FILE
        if not marker.exists():
            return None
        return json.loads(marker.read_text(encoding="utf-8"))["reason"]

    # -- save ---------------------------------------------------------------------

    def save(
        self,
        name: str,
        model: Gnn3d,
        graph: HeteroGraph,
        c_max: float = 4.0,
        weights: FoMWeights | None = None,
        precision: str = PRECISIONS[0],
    ) -> ModelManifest:
        """Persist a new version of ``model`` pinned to ``graph``.

        The version is assembled in a ``.tmp-`` sibling and renamed into
        place, so a crash at any point leaves :meth:`latest` pointing at
        the previous version — readers never observe a torn checkpoint.

        ``precision`` stamps the serving execution dtype into the
        manifest; the weights archive itself is always float64.
        """
        if precision not in PRECISIONS:
            raise ServeError(
                f"unknown precision {precision!r} (supported: {PRECISIONS})",
                stage="serve", details={"precision": precision})
        existing = self.all_versions(name)
        ordinal = (int(existing[-1][1:]) + 1) if existing else 1
        version = f"v{ordinal:04d}"
        target = self._version_dir(name, version)
        staging = target.parent / f".tmp-{version}"
        if staging.exists():
            shutil.rmtree(staging)  # leftover from a crashed save
        staging.mkdir(parents=True)
        try:
            weights_path = staging / _WEIGHTS_FILE
            save_state(model, weights_path)
            fom = weights or FoMWeights()
            manifest = ModelManifest(
                name=name,
                version=version,
                weights_sha256=_sha256(weights_path),
                graph_fingerprint=graph_fingerprint(graph),
                ap_dim=graph.ap_features.shape[1],
                module_dim=graph.module_features.shape[1],
                gnn_config=dataclasses.asdict(model.config),
                c_max=c_max,
                fom_weights=tuple(
                    getattr(fom, f.name) for f in dataclasses.fields(fom)),
                metric_names=tuple(METRIC_NAMES),
                precision=precision,
            )
            (staging / _MANIFEST_FILE).write_text(
                json.dumps(manifest.to_dict(), indent=2,
                           sort_keys=True) + "\n",
                encoding="utf-8")
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        os.replace(staging, target)
        return manifest

    # -- load ---------------------------------------------------------------------

    def load_manifest(self, name: str,
                      version: str | None = None) -> ModelManifest:
        """Read and schema-check one version's manifest."""
        version = version or self.latest(name)
        path = self._version_dir(name, version) / _MANIFEST_FILE
        if not path.exists():
            raise ServeError(
                f"no manifest for {name}@{version} in registry {self.root}",
                stage="serve", details={"name": name, "version": version})
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"unreadable manifest {path}: {exc}", stage="serve",
            ) from exc
        manifest = ModelManifest.from_dict(data)
        if manifest.schema_version != REGISTRY_SCHEMA_VERSION:
            raise ServeError(
                f"manifest schema {manifest.schema_version} != supported "
                f"{REGISTRY_SCHEMA_VERSION}", stage="serve")
        if manifest.normalization != NORMALIZATION_SCHEME:
            raise ServeError(
                f"checkpoint normalization {manifest.normalization!r} != "
                f"serving scheme {NORMALIZATION_SCHEME!r} — predictions "
                "would be denormalized with the wrong inverse",
                stage="serve")
        if manifest.precision not in PRECISIONS:
            raise ServeError(
                f"manifest declares unknown precision "
                f"{manifest.precision!r} (supported: {PRECISIONS})",
                stage="serve",
                details={"precision": manifest.precision})
        return manifest

    def load(
        self,
        name: str,
        version: str | None = None,
        graph: HeteroGraph | None = None,
    ) -> tuple[Gnn3d, ModelManifest]:
        """Rebuild a checkpointed model, verifying artifact integrity.

        With ``graph`` given, the serving graph's content fingerprint
        must equal the manifest's — the checkpoint is only valid for the
        exact geometry it was trained against.

        When the manifest declares ``precision: float32``, the verified
        float64 weights are cast in place after loading — the returned
        model scores in the declared execution dtype.
        """
        manifest = self.load_manifest(name, version)
        weights_path = (self._version_dir(manifest.name, manifest.version)
                        / _WEIGHTS_FILE)
        if not weights_path.exists():
            raise ServeError(
                f"weights archive missing at {weights_path}", stage="serve")
        actual_sha = _sha256(weights_path)
        if actual_sha != manifest.weights_sha256:
            raise ServeError(
                f"weights digest mismatch for {name}@{manifest.version}: "
                f"manifest {manifest.weights_sha256[:12]}…, file "
                f"{actual_sha[:12]}… — artifact corrupted or overwritten",
                stage="serve")
        model = Gnn3d(manifest.ap_dim, manifest.module_dim,
                      Gnn3dConfig(**manifest.gnn_config))
        try:
            load_state(model, weights_path)
        except ValueError as exc:
            raise ServeError(
                f"weights archive for {name}@{manifest.version} does not "
                f"fit the manifest's architecture: {exc}",
                stage="serve") from exc
        if manifest.precision == "float32":
            model.to_dtype(np.float32)
        if graph is not None:
            self.verify_graph(manifest, graph)
        return model, manifest

    @staticmethod
    def verify_graph(manifest: ModelManifest, graph: HeteroGraph) -> None:
        """Raise unless ``graph`` matches the checkpoint's fingerprint."""
        current = graph_fingerprint(graph)
        if tuple(current) != tuple(manifest.graph_fingerprint):
            raise ServeError(
                f"serving graph fingerprint {current} != checkpoint's "
                f"{tuple(manifest.graph_fingerprint)} — the model "
                f"{manifest.name}@{manifest.version} was trained on "
                "different geometry",
                stage="serve",
                details={"expected": list(manifest.graph_fingerprint),
                         "actual": list(current)})
