"""Worker-process lifecycle: spawn, health-check, restart with backoff.

The :class:`Supervisor` owns the OS-level half of the cluster: it forks
worker processes (fork-preferred, like
:class:`repro.perf.parallel.SamplePool`), watches their liveness two
ways — ``Process.is_alive`` for crashes, ping/pong heartbeats over the
pipe for hangs — and restarts dead slots in place with capped
exponential backoff + full jitter (a
:class:`~repro.reliability.retry.RetryPolicy`), so a crash-looping
worker cannot hammer the registry while the rest of the pool serves.

It is event-based, not callback-based: the cluster's pump loop calls
:meth:`poll_events` each tick and receives ``("down", index)`` /
``("respawned", index)`` tuples exactly once per transition, which
keeps the dispatcher's re-dispatch accounting idempotent.  The
supervisor deliberately knows nothing about requests; routing stranded
work belongs to :class:`repro.serve.dispatch.Dispatcher`.

Metrics: ``serve_restart_total{worker=...}`` on every down transition,
``serve_hung_total{worker=...}`` when a heartbeat expires, and a
``serve_recovery_seconds`` histogram measuring death -> serving-again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import connection as mpc
from typing import Any, Callable, Iterator

from repro.obs import NULL_CONTEXT, RunContext
from repro.perf.parallel import _resolve_context
from repro.reliability.retry import RetryPolicy
from repro.serve.worker import WorkerContext, worker_main

#: Reload acknowledgement states (see :meth:`Supervisor.reload_state`).
RELOAD_IDLE = "idle"
RELOAD_PENDING = "pending"
RELOAD_OK = "ok"
RELOAD_FAILED = "failed"


@dataclass
class _Slot:
    """One worker slot (the process comes and goes; the slot stays)."""

    index: int
    process: Any = None
    conn: Any = None
    ready: bool = False
    versions: dict = field(default_factory=dict)
    restart_attempt: int = 0
    down_since: float | None = None
    restart_due: float | None = None
    ping_token: int = 0
    ping_sent_at: float | None = None
    last_ping_at: float | None = None
    reload_state: str = RELOAD_IDLE
    reload_error: str | None = None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class Supervisor:
    """Keeps ``workers`` slots populated with live worker processes.

    Args:
        make_context: builds the :class:`WorkerContext` for a slot at
            spawn time — called again on every restart, so respawned
            workers pick up e.g. a rolled-back version map.
        workers: slot count.
        restart_policy: backoff schedule between death and respawn
            (``sleep_for`` is read, nothing ever blocks on it).
        heartbeat_interval_s: seconds between pings to a ready worker.
        heartbeat_timeout_s: unanswered-ping age that declares a hang.
        obs: observability context.
        clock: monotonic time source (injected for tests).
        start_method: multiprocessing start method (fork-preferred).
    """

    def __init__(
        self,
        make_context: Callable[[int], WorkerContext],
        workers: int,
        restart_policy: RetryPolicy | None = None,
        heartbeat_interval_s: float = 5.0,
        heartbeat_timeout_s: float = 10.0,
        obs: RunContext | None = None,
        clock: Callable[[], float] = time.perf_counter,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.make_context = make_context
        self.obs = obs if obs is not None else NULL_CONTEXT
        self.clock = clock
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.restart_policy = restart_policy or RetryPolicy(
            max_attempts=1, backoff_base=0.05, backoff_factor=2.0,
            backoff_max=2.0, jitter="full")
        self._mp = _resolve_context(start_method)
        self._slots = [_Slot(index=index) for index in range(workers)]
        self._events: list[tuple[str, int]] = []
        self.restarts = 0
        self.recoveries: list[float] = []

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        for slot in self._slots:
            self._spawn(slot)

    def _spawn(self, slot: _Slot) -> None:
        ctx = self.make_context(slot.index)
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(target=worker_main,
                                   args=(child_conn, ctx), daemon=True)
        process.start()
        child_conn.close()  # parent keeps one end, or EOF never fires
        slot.process = process
        slot.conn = parent_conn
        slot.ready = False
        slot.restart_due = None
        slot.ping_sent_at = None
        slot.last_ping_at = None
        slot.reload_state = RELOAD_IDLE
        slot.reload_error = None

    def _mark_down(self, slot: _Slot, reason: str) -> None:
        """Idempotent death bookkeeping; queues one ``down`` event."""
        if slot.process is None:
            return
        now = self.clock()
        if slot.conn is not None:
            slot.conn.close()
        slot.conn = None
        if slot.process.is_alive():
            slot.process.kill()
        slot.process.join(timeout=5.0)
        slot.process = None
        slot.ready = False
        slot.reload_state = RELOAD_IDLE
        if slot.down_since is None:
            slot.down_since = now
        slot.restart_attempt += 1
        backoff = self.restart_policy.sleep_for(slot.restart_attempt)
        slot.restart_due = now + backoff
        self.restarts += 1
        self.obs.counter("serve_restart_total", worker=slot.index).inc()
        self.obs.counter("serve_worker_down_total", reason=reason).inc()
        self._events.append(("down", slot.index))

    def kill(self, index: int, reason: str = "hung") -> None:
        """SIGKILL a worker (hung detection, or chaos injection)."""
        slot = self._slots[index]
        if slot.process is None:
            return
        if reason == "hung":
            self.obs.counter("serve_hung_total", worker=index).inc()
        self._mark_down(slot, reason)

    def poll_events(self) -> list[tuple[str, int]]:
        """Detect crashes, perform due restarts; drain the event queue.

        Returns ``("down", index)`` once per death (however detected)
        and ``("respawned", index)`` once per restart.  The caller must
        re-dispatch the dead worker's in-flight work on ``down``.
        """
        now = self.clock()
        for slot in self._slots:
            if slot.process is not None and not slot.process.is_alive():
                self._mark_down(slot, reason="exited")
        for slot in self._slots:
            if (slot.process is None and slot.restart_due is not None
                    and now >= slot.restart_due):
                self._spawn(slot)
                self._events.append(("respawned", slot.index))
        events, self._events = self._events, []
        return events

    def close(self) -> None:
        """Stop every worker: polite ``stop``, then SIGKILL stragglers."""
        for slot in self._slots:
            if slot.conn is not None and slot.alive():
                try:
                    slot.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    # Already dying; the SIGKILL below reaps it.
                    self.obs.counter("serve_worker_down_total",
                                     reason="stop_failed").inc()
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(timeout=2.0)
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join(timeout=5.0)
                slot.process = None
            if slot.conn is not None:
                slot.conn.close()
                slot.conn = None
            slot.ready = False
            slot.restart_due = None

    # -- health -------------------------------------------------------------------

    def heartbeat(self) -> set[int]:
        """Ping ready workers on the interval; return the hung ones.

        A worker is hung when its oldest unanswered ping is older than
        ``heartbeat_timeout_s``.  The caller decides to :meth:`kill`.
        """
        now = self.clock()
        hung: set[int] = set()
        for slot in self._slots:
            if not slot.ready or slot.conn is None:
                continue
            if (slot.ping_sent_at is not None
                    and now - slot.ping_sent_at >= self.heartbeat_timeout_s):
                hung.add(slot.index)
                continue
            if (slot.ping_sent_at is None
                    and (slot.last_ping_at is None
                         or now - slot.last_ping_at
                         >= self.heartbeat_interval_s)):
                slot.ping_token += 1
                if self.send(slot.index, ("ping", slot.ping_token)):
                    slot.ping_sent_at = now
                    slot.last_ping_at = now
        return hung

    def note_pong(self, index: int, token: int) -> None:
        slot = self._slots[index]
        if token == slot.ping_token:
            slot.ping_sent_at = None

    def note_ready(self, index: int, versions: dict) -> None:
        """A worker reported ``started``; records recovery time."""
        now = self.clock()
        slot = self._slots[index]
        slot.ready = True
        slot.versions = dict(versions)
        slot.restart_attempt = 0
        if slot.down_since is not None:
            recovery = now - slot.down_since
            self.recoveries.append(recovery)
            self.obs.histogram("serve_recovery_seconds").observe(recovery)
            slot.down_since = None

    # -- reload handshake ---------------------------------------------------------

    def begin_reload(self, index: int) -> None:
        slot = self._slots[index]
        slot.reload_state = RELOAD_PENDING
        slot.reload_error = None

    def note_reload(self, index: int, name: str, version: str,
                    error: str | None) -> None:
        slot = self._slots[index]
        if error is None:
            slot.versions[name] = version
            slot.reload_state = RELOAD_OK
        else:
            slot.reload_state = RELOAD_FAILED
            slot.reload_error = error

    def reload_state(self, index: int) -> tuple[str, str | None]:
        slot = self._slots[index]
        return slot.reload_state, slot.reload_error

    def end_reload(self, index: int) -> None:
        slot = self._slots[index]
        slot.reload_state = RELOAD_IDLE
        slot.reload_error = None

    # -- messaging ----------------------------------------------------------------

    def send(self, index: int, message: tuple) -> bool:
        """Send to a worker; on a broken pipe the slot goes down (one
        ``down`` event) and the send reports ``False``."""
        slot = self._slots[index]
        if slot.conn is None:
            return False
        try:
            slot.conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            self._mark_down(slot, reason="pipe_broken")
            return False

    def receive(self, timeout_s: float) -> Iterator[tuple[int, tuple]]:
        """Yield every message readable within ``timeout_s``.

        EOF on a pipe (worker exited) marks the slot down; the ``down``
        event surfaces on the next :meth:`poll_events`.
        """
        by_conn = {slot.conn: slot for slot in self._slots
                   if slot.conn is not None}
        if not by_conn:
            if timeout_s > 0:
                time.sleep(timeout_s)
            return
        try:
            readable = mpc.wait(list(by_conn), timeout=timeout_s)
        except OSError:
            return
        for conn in readable:
            slot = by_conn[conn]
            while slot.conn is conn:
                try:
                    if not conn.poll(0):
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    self._mark_down(slot, reason="eof")
                    break
                yield slot.index, message

    # -- introspection ------------------------------------------------------------

    def ready_indices(self) -> list[int]:
        """Slots currently assignable: ready, alive, not mid-reload."""
        return [slot.index for slot in self._slots
                if slot.ready and slot.alive()
                and slot.reload_state in (RELOAD_IDLE, RELOAD_OK,
                                          RELOAD_FAILED)]

    def all_ready(self) -> bool:
        return all(slot.ready and slot.alive() for slot in self._slots)

    def is_alive(self, index: int) -> bool:
        return self._slots[index].alive()

    def versions_of(self, index: int) -> dict:
        return dict(self._slots[index].versions)
