"""Cluster worker: one process, one :class:`ScoringService`, one pipe.

``worker_main`` is the process entry point the supervisor spawns.  The
protocol over the duplex pipe is deliberately tiny — plain tuples whose
first element is the kind:

parent -> worker
    ``("score", payload)``      score one request (payload dict below)
    ``("ping", token)``         liveness probe
    ``("reload", name, ver)``   switch a model to another version
    ``("stop",)``               drain nothing, exit cleanly

worker -> parent
    ``("started", index, versions)``              ready to serve
    ``("start_failed", index, name, ver, err)``   a checkpoint refused
    ``("result", index, payload)``                one scored outcome
    ``("pong", index, token)``
    ``("reloaded", index, name, ver)``
    ``("reload_failed", index, name, ver, err)``

Score payloads carry ``{"id", "graph_id", "guidance", "unit"}``; the
``unit`` is the cluster-wide acknowledgement ordinal, installed as the
:func:`~repro.reliability.faults.fault_scope` so injected serve faults
(raising ``stage="serve"`` plans, stalling ``stage="serve_stall"``
plans) address requests identically no matter which worker serves them
or how work is re-dispatched after a kill.

Contiguous ``score`` messages waiting in the pipe are coalesced into one
service flush, so the cluster inherits the micro-batching economics of
:class:`~repro.serve.service.ScoringService` instead of degenerating to
batch-of-one under load.

A ``reload`` builds a *fresh* service from the registry and swaps it in
only after every endpoint loaded and integrity-checked; a checkpoint
that fails verification therefore never serves a single request — the
worker reports ``reload_failed`` and keeps serving the old version.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.reliability.errors import ServeError
from repro.reliability.faults import (
    _ACTIVE,
    FaultInjector,
    FaultPlan,
    fault_scope,
    maybe_inject,
    maybe_stall,
)
from repro.serve.registry import ModelRegistry
from repro.serve.service import ScoreRequest, ScoringService, ServeConfig

#: Fault stage of raising serve plans (forced per-request failures).
FAULT_STAGE = "serve"
#: Fault stage of stalling plans (wedged-forward simulation).
STALL_STAGE = "serve_stall"


@dataclass(frozen=True)
class WorkerContext:
    """Everything a worker needs to build its service.

    Attributes:
        index: worker slot number (stable across restarts).
        registry_root: path of the :class:`ModelRegistry` root.
        endpoints: ``(graph_id, model_name)`` pairs to expose.
        graphs: ``graph_id -> HeteroGraph`` serving geometries.
        versions: ``model_name -> version`` to load at start.
        serve: per-worker :class:`ServeConfig`.
        fault_plans: :class:`FaultPlan` set to install (chaos harness).
    """

    index: int
    registry_root: str
    endpoints: tuple
    graphs: dict
    versions: dict
    serve: ServeConfig
    fault_plans: tuple = ()


def _build_service(ctx: WorkerContext, registry: ModelRegistry,
                   versions: dict) -> ScoringService:
    """A fresh service with every endpoint loaded and verified.

    Raises the offending endpoint's :class:`ServeError` annotated with
    the ``(name, version)`` that refused, so the parent can quarantine
    precisely.
    """
    service = ScoringService(ctx.serve)
    for graph_id, model_name in ctx.endpoints:
        try:
            service.register_checkpoint(
                graph_id, registry, model_name, ctx.graphs[graph_id],
                version=versions[model_name])
        except ServeError as exc:
            exc.details.setdefault("model", model_name)
            exc.details.setdefault("version", versions[model_name])
            raise
    return service


def worker_main(conn, ctx: WorkerContext) -> None:
    """Process entry point: serve until ``stop`` or pipe closure."""
    # A fork-started worker inherits the parent's active injectors,
    # whose process-local call counters would diverge between runs.
    # Start clean and install the shipped plans so selection is purely
    # unit-scoped (deterministic regardless of worker count).
    # One-time per-process reset *before* any task runs; selection
    # stays unit-scoped afterwards.
    # repro-lint: disable-next-line=WRK001 -- pre-task injector reset
    _ACTIVE.clear()
    plans: tuple[FaultPlan, ...] = tuple(ctx.fault_plans)
    if plans:
        FaultInjector(*plans).__enter__()  # active for worker lifetime
    registry = ModelRegistry(ctx.registry_root)
    versions = dict(ctx.versions)
    model_for: dict[str, str] = {graph_id: name
                                 for graph_id, name in ctx.endpoints}
    try:
        service = _build_service(ctx, registry, versions)
    except ServeError as exc:
        name = exc.details.get("model", "?")
        version = exc.details.get("version", "?")
        conn.send(("start_failed", ctx.index, name, version, str(exc)))
        conn.close()
        return
    conn.send(("started", ctx.index, dict(versions)))
    inbox: deque = deque()
    while True:
        if inbox:
            message = inbox.popleft()
        else:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "ping":
            conn.send(("pong", ctx.index, message[1]))
            continue
        if kind == "reload":
            _, name, version = message
            candidate = dict(versions)
            candidate[name] = version
            try:
                service = _build_service(ctx, registry, candidate)
            except ServeError as exc:
                # The new checkpoint never served a request: the old
                # service stays installed untouched.
                conn.send(("reload_failed", ctx.index, name, version,
                           str(exc)))
                continue
            versions = candidate
            conn.send(("reloaded", ctx.index, name, version))
            continue
        if kind != "score":
            continue  # unknown kinds are ignored, not fatal
        # Coalesce every contiguous score message already in flight.
        batch = [message[1]]
        while conn.poll(0):
            try:
                extra = conn.recv()
            except (EOFError, OSError):
                break
            if extra[0] == "score":
                batch.append(extra[1])
            else:
                inbox.append(extra)
                break
        accepted = []
        for payload in batch:
            try:
                with fault_scope(payload["unit"]):
                    stall = maybe_stall(STALL_STAGE)
                    if stall > 0:
                        time.sleep(stall)
                    maybe_inject(FAULT_STAGE)
                    service.submit(ScoreRequest(
                        graph_id=payload["graph_id"],
                        guidance=payload["guidance"],
                        request_id=payload["id"]))
            except ServeError as exc:
                conn.send(("result", ctx.index, {
                    "id": payload["id"],
                    "graph_id": payload["graph_id"],
                    "status": "failed", "metrics": None, "fom": None,
                    "batch_size": 0, "degraded": False,
                    "error": str(exc),
                    "version": versions.get(
                        model_for.get(payload["graph_id"], ""), None)}))
                continue
            accepted.append(payload)
        if not accepted:
            continue
        for result in service.flush():
            record = result.to_dict()
            record["version"] = versions.get(
                model_for.get(result.graph_id, ""), None)
            conn.send(("result", ctx.index, record))
    conn.close()
