"""Inference front-end: serve a trained ``f_theta`` as a scoring oracle.

The relaxation loop evaluates guidance candidates through block-diagonal
union forwards; this package turns that capability into a persistent
service (see ``docs/SERVING.md``):

* :class:`ModelRegistry` — versioned on-disk checkpoints (weights +
  graph fingerprint + normalization stats + config manifest) with
  end-to-end integrity checks on load;
* :class:`ScoringService` — synchronous API over internally
  micro-batched forwards, with bounded-queue admission control,
  degradation to unbatched forwards on mid-flight cache invalidation,
  and ``serve_*`` metrics through :mod:`repro.obs`.
"""

from repro.reliability.errors import ServeError
from repro.serve.registry import (
    ModelManifest,
    ModelRegistry,
    NORMALIZATION_SCHEME,
    REGISTRY_SCHEMA_VERSION,
)
from repro.serve.service import (
    DEFAULT_FORWARD_BLOCK,
    ScoreRequest,
    ScoreResult,
    ScoringService,
    ServeConfig,
    ServiceStats,
)

__all__ = [
    "DEFAULT_FORWARD_BLOCK",
    "ModelManifest",
    "ModelRegistry",
    "NORMALIZATION_SCHEME",
    "REGISTRY_SCHEMA_VERSION",
    "ScoreRequest",
    "ScoreResult",
    "ScoringService",
    "ServeConfig",
    "ServeError",
    "ServiceStats",
]
