"""Inference front-end: serve a trained ``f_theta`` as a scoring oracle.

The relaxation loop evaluates guidance candidates through block-diagonal
union forwards; this package turns that capability into a persistent,
fault-tolerant service (see ``docs/SERVING.md``):

* :class:`ModelRegistry` — versioned on-disk checkpoints (weights +
  graph fingerprint + normalization stats + config manifest) with
  end-to-end integrity checks on load, atomic saves, and a quarantine
  mechanism for artifacts that fail verification;
* :class:`ScoringService` — synchronous API over internally
  micro-batched forwards, with bounded-queue admission control,
  degradation to unbatched forwards on mid-flight cache invalidation,
  and ``serve_*`` metrics through :mod:`repro.obs`;
* :class:`ServeCluster` — a supervised pool of worker processes each
  running a :class:`ScoringService`, adding per-request deadlines,
  circuit breakers, load shedding, at-least-once re-dispatch of work
  stranded on killed workers, and zero-downtime version rollover with
  automatic rollback (chaos-tested by ``benchmarks/bench_chaos.py``).
"""

from repro.reliability.errors import ServeError, ServeTimeoutError
from repro.serve.cluster import (
    ClusterConfig,
    RolloverResult,
    ServeCluster,
)
from repro.serve.dispatch import (
    CircuitBreaker,
    ClusterResult,
    ClusterStats,
    Dispatcher,
)
from repro.serve.registry import (
    FLOAT32_PARITY_RTOL,
    ModelManifest,
    ModelRegistry,
    NORMALIZATION_SCHEME,
    PRECISIONS,
    REGISTRY_SCHEMA_VERSION,
)
from repro.serve.service import (
    DEFAULT_FORWARD_BLOCK,
    ScoreRequest,
    ScoreResult,
    ScoringService,
    ServeConfig,
    ServiceStats,
)
from repro.serve.supervisor import Supervisor
from repro.serve.worker import WorkerContext

__all__ = [
    "DEFAULT_FORWARD_BLOCK",
    "FLOAT32_PARITY_RTOL",
    "PRECISIONS",
    "CircuitBreaker",
    "ClusterConfig",
    "ClusterResult",
    "ClusterStats",
    "Dispatcher",
    "ModelManifest",
    "ModelRegistry",
    "NORMALIZATION_SCHEME",
    "REGISTRY_SCHEMA_VERSION",
    "RolloverResult",
    "ScoreRequest",
    "ScoreResult",
    "ScoringService",
    "ServeCluster",
    "ServeConfig",
    "ServeError",
    "ServeTimeoutError",
    "ServiceStats",
    "Supervisor",
    "WorkerContext",
]
