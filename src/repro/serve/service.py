"""The micro-batched guidance-scoring service.

Synchronous API, batched execution: callers submit ``(graph_id, C)``
requests one at a time (or as a stream) and the service coalesces the
pending queue into scoring waves of up to ``max_batch`` candidates,
served by batched model calls of at most ``forward_block`` candidates
each.  Inside each call, ``Gnn3d.forward_batch`` processes replicas in
L2-resident cache blocks over the same
:class:`~repro.perf.cache.ForwardCacheStore`-backed union plans
potential relaxation uses, so a served score is bit-compatible with a
direct :class:`~repro.model.gnn3d.Gnn3d` forward.  Endpoints whose
manifest declares ``precision: float32`` score in float32 under the
documented parity tolerance
(:data:`repro.serve.registry.FLOAT32_PARITY_RTOL`).

Operational behavior:

* **admission control** — the pending queue is bounded at ``max_queue``;
  a submit beyond it (or with an unknown graph id / misshaped guidance)
  is rejected with a typed
  :class:`~repro.reliability.errors.ServeError` and counted under
  ``serve_requests_total{status=rejected}``;
* **degradation** — when a graph's content fingerprint changes between
  registration and flush (the forward cache was invalidated mid-flight)
  or a batched forward raises, the affected chunk falls back to
  unbatched per-request forwards instead of failing wholesale;
* **observability** — ``serve_requests_total{status=...}`` counters, a
  ``serve_queue_depth`` gauge, and a per-batch ``serve_batch_seconds``
  latency histogram through the run's :class:`repro.obs.RunContext`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.model.gnn3d import Gnn3d
from repro.nn import Tensor, no_grad
from repro.obs import NULL_CONTEXT, RunContext
from repro.perf.cache import graph_fingerprint
from repro.reliability.errors import ReproError, ServeError
from repro.serve.registry import PRECISIONS, ModelManifest, ModelRegistry
from repro.simulation.metrics import FoMWeights

#: Exceptions a forward pass can legitimately raise at serve time; they
#: trigger degradation / per-request failure instead of crashing the
#: flush (anything else is a programming error and propagates).
_FORWARD_ERRORS = (ReproError, ValueError, ArithmeticError)


#: Most candidates handed to one model call inside a wave.  The model
#: itself cache-blocks internally (``Gnn3d.forward_batch`` processes
#: replicas in L2-resident blocks of
#: :data:`repro.model.gnn3d.DEFAULT_CACHE_BLOCK`), so per-candidate
#: forward cost stays flat well past the old L2-spill ceiling of 4 —
#: larger calls now amortize per-call dispatch (fingerprint check, plan
#: lookup, stacking) over more candidates (see
#: ``benchmarks/bench_serve.py``'s monotone-throughput sweep).
DEFAULT_FORWARD_BLOCK = 16


@dataclass(frozen=True)
class ServeConfig:
    """Service knobs.

    Attributes:
        max_batch: most candidates coalesced into one scoring wave (the
            admission/dispatch window — per-wave fingerprint checks,
            grouping, and metric updates amortize over it).
        max_queue: admission bound on pending (submitted, unflushed)
            requests.
        forward_block: most candidates per batched model call inside a
            wave; waves larger than this run several back-to-back
            calls.  The model cache-blocks internally, so this is a
            dispatch-granularity knob, not a cache-size one.
    """

    max_batch: int = 8
    max_queue: int = 64
    forward_block: int = DEFAULT_FORWARD_BLOCK

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.forward_block < 1:
            raise ValueError(
                f"forward_block must be >= 1, got {self.forward_block}")


@dataclass(frozen=True)
class ScoreRequest:
    """One scoring request: a guidance candidate for a registered graph.

    Attributes:
        graph_id: endpoint the candidate targets.
        guidance: (num_aps, 3) guidance array in graph AP order.
        request_id: caller-chosen correlation id (assigned when omitted).
    """

    graph_id: str
    guidance: np.ndarray
    request_id: str | None = None


@dataclass(frozen=True)
class ScoreResult:
    """The scored outcome of one request.

    Attributes:
        request_id: correlation id of the originating request.
        graph_id: endpoint that scored it.
        status: ``"ok"`` or ``"failed"``.
        metrics: length-5 normalized metric predictions (``None`` on
            failure).
        fom: signed-weighted scalar figure of merit, lower is better
            (``None`` on failure).
        batch_size: candidates in the forward this request rode in.
        degraded: the request was served by an unbatched fallback.
        error: failure description when ``status == "failed"``.
    """

    request_id: str
    graph_id: str
    status: str
    metrics: np.ndarray | None
    fom: float | None
    batch_size: int
    degraded: bool = False
    error: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready record (the CLI's output-JSONL line)."""
        return {
            "id": self.request_id,
            "graph_id": self.graph_id,
            "status": self.status,
            "metrics": (None if self.metrics is None
                        else [float(m) for m in self.metrics]),
            "fom": None if self.fom is None else float(self.fom),
            "batch_size": self.batch_size,
            "degraded": self.degraded,
            "error": self.error,
        }


@dataclass
class _Endpoint:
    model: Gnn3d
    graph: HeteroGraph
    w_signed: np.ndarray
    fingerprint: tuple
    c_max: float = 4.0
    precision: str = "float64"

    def cast_guidance(self, guidance: np.ndarray) -> np.ndarray:
        """Guidance in the endpoint's execution dtype (no-op float64)."""
        if self.precision == "float32":
            return guidance.astype(np.float32)
        return guidance


@dataclass
class ServiceStats:
    """Cumulative request accounting (mirrors the obs counters, but
    available even when the service runs without a recording context)."""

    ok: int = 0
    failed: int = 0
    rejected: int = 0
    batches: int = 0
    degraded_batches: int = 0


class ScoringService:
    """Synchronous, internally micro-batched guidance scoring."""

    def __init__(self, config: ServeConfig | None = None,
                 obs: RunContext | None = None) -> None:
        self.config = config or ServeConfig()
        self.obs = obs if obs is not None else NULL_CONTEXT
        self.stats = ServiceStats()
        self._endpoints: dict[str, _Endpoint] = {}
        self._queue: list[ScoreRequest] = []
        self._next_request = 0

    # -- endpoints ----------------------------------------------------------------

    def register(self, graph_id: str, model: Gnn3d, graph: HeteroGraph,
                 weights: FoMWeights | None = None,
                 c_max: float = 4.0, precision: str = "float64") -> None:
        """Expose ``model`` for scoring candidates on ``graph``.

        ``precision`` selects the execution dtype (see
        :data:`repro.serve.registry.PRECISIONS`); ``"float32"`` casts
        the model's parameters **in place** and serves every request in
        float32 under the documented parity tolerance
        (:data:`repro.serve.registry.FLOAT32_PARITY_RTOL`).
        """
        if precision not in PRECISIONS:
            raise ServeError(
                f"unknown precision {precision!r} (supported: "
                f"{PRECISIONS})", stage="serve",
                details={"precision": precision})
        if precision == "float32":
            model.to_dtype(np.float32)
        self._endpoints[graph_id] = _Endpoint(
            model=model, graph=graph,
            w_signed=(weights or FoMWeights()).as_signed_vector(),
            fingerprint=graph_fingerprint(graph), c_max=c_max,
            precision=precision)

    def register_checkpoint(self, graph_id: str, registry: ModelRegistry,
                            name: str, graph: HeteroGraph,
                            version: str | None = None) -> ModelManifest:
        """Load a registry checkpoint (integrity-checked against
        ``graph``) and register it under ``graph_id``.  The manifest's
        ``precision`` field selects the execution dtype (the registry
        load already cast the weights)."""
        model, manifest = registry.load(name, version, graph=graph)
        self._endpoints[graph_id] = _Endpoint(
            model=model, graph=graph,
            w_signed=manifest.signed_fom_vector(),
            fingerprint=tuple(manifest.graph_fingerprint),
            c_max=manifest.c_max, precision=manifest.precision)
        return manifest

    def graph_ids(self) -> list[str]:
        return sorted(self._endpoints)

    # -- admission ----------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def _reject(self, message: str, **details) -> ServeError:
        self.stats.rejected += 1
        self.obs.counter("serve_requests_total", status="rejected").inc()
        return ServeError(message, stage="serve", details=details or None)

    def submit(self, request: ScoreRequest) -> ScoreRequest:
        """Queue one request; returns it with a request id assigned.

        Raises :class:`ServeError` when the queue is full, the graph id
        is unknown, or the guidance is misshaped/non-finite — rejected
        requests never enter the queue.
        """
        endpoint = self._endpoints.get(request.graph_id)
        if endpoint is None:
            raise self._reject(
                f"unknown graph_id {request.graph_id!r} "
                f"(registered: {self.graph_ids()})",
                graph_id=request.graph_id)
        # Admission-time shape normalization in float64; the
        # per-endpoint cast_guidance converts right before the forward.
        # repro-lint: disable-next-line=PRE001 -- admission normalization
        guidance = np.asarray(request.guidance, dtype=float)
        expected = (endpoint.graph.num_aps, 3)
        if guidance.shape != expected:
            raise self._reject(
                f"guidance shape {guidance.shape} != {expected} for "
                f"graph {request.graph_id!r}", graph_id=request.graph_id)
        if not np.isfinite(guidance).all():
            raise self._reject(
                f"non-finite guidance for graph {request.graph_id!r}",
                graph_id=request.graph_id)
        if len(self._queue) >= self.config.max_queue:
            raise self._reject(
                f"queue full ({self.config.max_queue} pending); flush "
                "before submitting more", graph_id=request.graph_id,
                max_queue=self.config.max_queue)
        request_id = request.request_id
        if request_id is None:
            request_id = f"req-{self._next_request}"
        self._next_request += 1
        queued = ScoreRequest(graph_id=request.graph_id, guidance=guidance,
                              request_id=request_id)
        self._queue.append(queued)
        self.obs.gauge("serve_queue_depth").set(len(self._queue))
        return queued

    # -- scoring ------------------------------------------------------------------

    def flush(self) -> list[ScoreResult]:
        """Score every pending request; results in submission order."""
        queue, self._queue = self._queue, []
        self.obs.gauge("serve_queue_depth").set(0)
        if not queue:
            return []
        by_graph: dict[str, list[int]] = {}
        for index, request in enumerate(queue):
            by_graph.setdefault(request.graph_id, []).append(index)
        results: list[ScoreResult | None] = [None] * len(queue)
        max_batch = self.config.max_batch
        for graph_id, indices in by_graph.items():
            endpoint = self._endpoints[graph_id]
            for start in range(0, len(indices), max_batch):
                chunk = indices[start: start + max_batch]
                scored = self._score_chunk(endpoint,
                                           [queue[i] for i in chunk])
                for index, result in zip(chunk, scored):
                    results[index] = result
        for result in results:
            if result.status == "ok":
                self.stats.ok += 1
                self.obs.counter("serve_requests_total", status="ok").inc()
            else:
                self.stats.failed += 1
                self.obs.counter("serve_requests_total",
                                 status="failed").inc()
        return results

    def score(self, graph_id: str, guidance: np.ndarray,
              request_id: str | None = None) -> ScoreResult:
        """Submit one request and flush; returns *its* result.

        Anything already queued is flushed along with it (the service is
        synchronous — nothing scores until a flush).
        """
        queued = self.submit(ScoreRequest(graph_id, guidance,
                                          request_id=request_id))
        results = self.flush()
        return next(r for r in results if r.request_id == queued.request_id)

    def score_stream(
        self, requests: Iterable[ScoreRequest]
    ) -> Iterator[ScoreResult]:
        """Score an iterable of requests, coalescing up to ``max_batch``.

        Yields results in submission order as each internal batch
        completes, so an unbounded stream is served with bounded memory.
        """
        threshold = min(self.config.max_batch, self.config.max_queue)
        for request in requests:
            self.submit(request)
            if self.queue_depth >= threshold:
                yield from self.flush()
        yield from self.flush()

    # -- internals ----------------------------------------------------------------

    def _score_chunk(self, endpoint: _Endpoint,
                     requests: list[ScoreRequest]) -> list[ScoreResult]:
        """One coalesced forward (or its unbatched degradation)."""
        degraded = False
        current = graph_fingerprint(endpoint.graph)
        if current != tuple(endpoint.fingerprint):
            # The graph mutated under a pinned checkpoint: the forward
            # cache just invalidated, so skip building a fresh union
            # plan for what may be a transient geometry and serve this
            # chunk unbatched.  The new fingerprint becomes the pin so
            # a *stable* new geometry re-batches on the next flush.
            endpoint.fingerprint = current
            degraded = True
            self.obs.counter("serve_degraded_total",
                             reason="cache_invalidated").inc()
        start = time.perf_counter()
        preds: np.ndarray | None = None
        if not degraded and len(requests) > 1:
            block = self.config.forward_block
            try:
                rows = []
                for sub_start in range(0, len(requests), block):
                    sub = requests[sub_start: sub_start + block]
                    stack = endpoint.cast_guidance(
                        np.stack([r.guidance for r in sub]))
                    # Tape-free: scoring never backpropagates, and
                    # retained per-block activation graphs would grow
                    # the working set with the wave, defeating the
                    # model's L2 cache blocking.
                    with no_grad():
                        rows.append(endpoint.model(
                            endpoint.graph, Tensor(stack)).numpy())
                preds = np.concatenate(rows, axis=0)
            except _FORWARD_ERRORS:
                degraded = True
                self.obs.counter("serve_degraded_total",
                                 reason="forward_error").inc()
        results: list[ScoreResult] = []
        for row, request in enumerate(requests):
            if preds is not None:
                results.append(self._to_result(
                    endpoint, request, preds[row], len(requests), degraded))
                continue
            try:
                with no_grad():
                    single = endpoint.model(
                        endpoint.graph,
                        Tensor(endpoint.cast_guidance(
                            request.guidance))).numpy()
            except _FORWARD_ERRORS as exc:
                results.append(ScoreResult(
                    request_id=request.request_id,
                    graph_id=request.graph_id, status="failed",
                    metrics=None, fom=None, batch_size=1,
                    degraded=degraded, error=str(exc)))
                continue
            results.append(self._to_result(
                endpoint, request, single, 1, degraded))
        elapsed = time.perf_counter() - start
        self.stats.batches += 1
        if degraded:
            self.stats.degraded_batches += 1
        mode = "unbatched" if preds is None else "batched"
        self.obs.counter("serve_batches_total", mode=mode).inc()
        self.obs.histogram("serve_batch_seconds").observe(elapsed)
        return results

    @staticmethod
    def _to_result(endpoint: _Endpoint, request: ScoreRequest,
                   metrics: np.ndarray, batch_size: int,
                   degraded: bool) -> ScoreResult:
        if not np.isfinite(metrics).all():
            return ScoreResult(
                request_id=request.request_id, graph_id=request.graph_id,
                status="failed", metrics=None, fom=None,
                batch_size=batch_size, degraded=degraded,
                error="non-finite model prediction")
        return ScoreResult(
            request_id=request.request_id, graph_id=request.graph_id,
            status="ok", metrics=metrics,
            fom=float(endpoint.w_signed @ metrics),
            batch_size=batch_size, degraded=degraded)
