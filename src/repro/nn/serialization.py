"""Save/load module parameters as .npz archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.modules import Module


def save_state(module: Module, path: str | Path) -> None:
    """Write all named parameters of a module to a compressed .npz file."""
    arrays = {name: param.data for name, param in module.named_parameters()}
    np.savez_compressed(Path(path), **arrays)


def load_state(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_state` into a module in place.

    The module must have the same architecture (same parameter names and
    shapes) as the one that was saved.
    """
    p = Path(path)
    if not p.exists():
        # np.savez_compressed appends .npz on save, so a bare stem is a
        # legitimate alias — but only when the .npz actually exists.
        fallback = None if str(p).endswith(".npz") else Path(f"{p}.npz")
        if fallback is not None and fallback.exists():
            p = fallback
        else:
            tried = str(p) if fallback is None else f"{p} (or {fallback})"
            raise FileNotFoundError(f"no saved module state at {tried}")
    with np.load(p) as archive:
        named = dict(module.named_parameters())
        missing = set(named) - set(archive.files)
        extra = set(archive.files) - set(named)
        if missing or extra:
            raise ValueError(
                f"parameter mismatch: missing {sorted(missing)}, "
                f"extra {sorted(extra)}"
            )
        for name, param in named.items():
            data = archive[name]
            if data.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: saved {data.shape}, "
                    f"module {param.data.shape}"
                )
            param.data = data.astype(np.float64)
