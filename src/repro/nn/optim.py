"""Gradient-descent optimizers: SGD and Adam."""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Parameter


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params: list[Parameter]) -> None:
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = list(params)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data += velocity


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / (1 - b1 ** self._t)
            v_hat = v / (1 - b2 ** self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
