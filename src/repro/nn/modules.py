"""Neural-network building blocks: Module, Linear, MLP, Sequential."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable parameter."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter discovery.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` walks them in deterministic order.
    """

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for name in sorted(vars(self)):
            value = getattr(self, name)
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Parameter):
                        params.append(item)
                    elif isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        named: list[tuple[str, Parameter]] = []
        for name in sorted(vars(self)):
            value = getattr(self, name)
            path = f"{prefix}{name}"
            if isinstance(value, Parameter):
                named.append((path, value))
            elif isinstance(value, Module):
                named.extend(value.named_parameters(prefix=f"{path}."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        named.append((f"{path}.{i}", item))
                    elif isinstance(item, Module):
                        named.extend(item.named_parameters(prefix=f"{path}.{i}."))
        return named

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter to ``dtype`` in place; clears gradients.

        The reduced-precision scoring path casts a loaded model to
        float32 once at registration time; training and relaxation stay
        float64 (serialization always persists float64 weights).
        """
        dtype = np.dtype(dtype)
        for param in self.parameters():
            param.data = param.data.astype(dtype, copy=False)
            param.grad = None
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with Xavier-uniform init."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-bound, bound,
                                            size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        if self.bias is None:
            return x @ self.weight
        return x.affine(self.weight, self.bias)


_ACTIVATIONS = {
    "relu": lambda t: t.relu(),
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "softplus": lambda t: t.softplus(),
    "identity": lambda t: t,
}


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    Args:
        dims: layer widths, e.g. ``[in, hidden, out]``.
        rng: parameter-init RNG.
        activation: hidden activation name.
        final_activation: activation after the last layer ("identity"
            by default).
    """

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator,
        activation: str = "softplus",
        final_activation: str = "identity",
    ) -> None:
        if len(dims) < 2:
            raise ValueError(f"MLP needs at least [in, out] dims, got {dims}")
        for name in (activation, final_activation):
            if name not in _ACTIVATIONS:
                raise ValueError(f"unknown activation {name!r}")
        self.layers = [
            Linear(d_in, d_out, rng) for d_in, d_out in zip(dims[:-1], dims[1:])
        ]
        self.activation = activation
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        act = _ACTIVATIONS[self.activation]
        for layer in self.layers[:-1]:
            x = act(layer(x))
        x = self.layers[-1](x)
        return _ACTIVATIONS[self.final_activation](x)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, modules: list[Module]) -> None:
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x
