"""Free-standing autograd ops: concatenation, stacking, segment sums."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an axis."""
    ts = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.data.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, end in zip(ts, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, end)
                t._accumulate(grad[tuple(index)])

    return Tensor(out_data, parents=tuple(ts), backward=backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shape tensors along a new axis."""
    ts = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in ts], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.split(grad, len(ts), axis=axis)
        for t, slab in zip(ts, slabs):
            if t.requires_grad:
                t._accumulate(np.squeeze(slab, axis=axis))

    return Tensor(out_data, parents=tuple(ts), backward=backward)


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets.

    The GNN aggregation primitive: message rows with the same segment id
    (receiver node) sum into that node's slot.  Gradient is a row gather.
    """
    values = as_tensor(values)
    ids = np.asarray(segment_ids, dtype=np.int64)
    if ids.ndim != 1 or len(ids) != values.shape[0]:
        raise ValueError(
            f"segment_ids must be 1-D with length {values.shape[0]}, got {ids.shape}"
        )
    if len(ids) and (ids.min() < 0 or ids.max() >= num_segments):
        raise ValueError("segment id out of range")
    out_shape = (num_segments,) + values.shape[1:]
    dtype = values.data.dtype
    if values.data.ndim == 2 and len(ids):
        # Column-wise bincount beats the unbuffered np.add.at scatter by
        # >2x on GNN-message shapes and accumulates in the same sequential
        # index order, so the result is bit-identical.
        cols = np.ascontiguousarray(values.data.T)
        out_t = np.empty((values.shape[1], num_segments), dtype=dtype)
        for j in range(out_t.shape[0]):
            out_t[j] = np.bincount(ids, weights=cols[j], minlength=num_segments)
        out_data = np.ascontiguousarray(out_t.T)
    else:
        out_data = np.zeros(out_shape, dtype=dtype)
        np.add.at(out_data, ids, values.data)

    def backward(grad: np.ndarray) -> None:
        values._accumulate(grad[ids])

    return Tensor(out_data, parents=(values,), backward=backward)


def segment_sum_csr(values: Tensor, seg_nodes: np.ndarray,
                    seg_starts: np.ndarray, sorted_ids: np.ndarray,
                    num_segments: int) -> Tensor:
    """Segment sum over rows pre-sorted by segment id (CSR layout).

    The blocked GNN forward's aggregation primitive: message rows come
    out of the plan already grouped by receiving node, so one contiguous
    ``np.add.reduceat`` sweep replaces :func:`segment_sum`'s per-column
    bincount scatter.  ``seg_nodes``/``seg_starts`` are the plan's
    precomputed distinct receivers and row offsets
    (:class:`repro.perf.cache.UnionBlockPlan`); ``sorted_ids`` is the
    full dst-sorted id array the gradient gather needs.  Reduceat sums
    left to right within each segment — same order as bincount over the
    sorted rows — but the sort itself reorders same-receiver messages,
    so results match :func:`segment_sum` on unsorted edges only to
    summation-order tolerance, not bitwise.
    """
    values = as_tensor(values)
    ids = np.asarray(sorted_ids, dtype=np.int64)
    if ids.ndim != 1 or len(ids) != values.shape[0]:
        raise ValueError(
            f"sorted_ids must be 1-D with length {values.shape[0]}, "
            f"got {ids.shape}"
        )
    if len(seg_nodes) != len(seg_starts):
        raise ValueError(
            f"seg_nodes/seg_starts length mismatch: "
            f"{len(seg_nodes)} != {len(seg_starts)}"
        )
    if len(seg_nodes) and (seg_nodes.min() < 0
                           or seg_nodes.max() >= num_segments):
        raise ValueError("segment id out of range")
    out_data = np.zeros((num_segments,) + values.shape[1:],
                        dtype=values.data.dtype)
    if len(seg_nodes):
        out_data[seg_nodes] = np.add.reduceat(values.data, seg_starts,
                                              axis=0)

    def backward(grad: np.ndarray) -> None:
        values._accumulate(grad[ids])

    return Tensor(out_data, parents=(values,), backward=backward)


def where_positive(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where condition > 0 else ``b`` (no grad to cond)."""
    a, b = as_tensor(a), as_tensor(b)
    mask = np.asarray(condition) > 0
    out_data = np.where(mask, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.where(mask, grad, 0.0))
        if b.requires_grad:
            b._accumulate(np.where(mask, 0.0, grad))

    return Tensor(out_data, parents=(a, b), backward=backward)
