"""Minimal reverse-mode autograd framework on numpy.

The paper trains its 3DGNN with torch; offline we provide an equivalent
tape-based autograd (DESIGN.md section 2).  Autograd is load-bearing beyond
training: potential relaxation (Section 4.3) needs ``dV/dC`` through the
trained network, which falls out of the same machinery by marking the
guidance tensor ``requires_grad``.
"""

from repro.nn.functional import (
    concat,
    segment_sum,
    segment_sum_csr,
    stack,
    where_positive,
)
from repro.nn.modules import MLP, Linear, Module, Parameter, Sequential
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.rbf import RBFExpansion
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor, as_tensor, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "concat",
    "segment_sum",
    "segment_sum_csr",
    "stack",
    "where_positive",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Sequential",
    "Optimizer",
    "Adam",
    "SGD",
    "RBFExpansion",
    "save_state",
    "load_state",
]
