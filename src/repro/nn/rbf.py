"""Radial basis expansion of distances (Eq. 2-3, after SchNet [17]).

Directly feeding raw distances into messages leaves the initial (near-
linear) network on a plateau; expanding each distance over a bank of
Gaussians decorrelates the initial messages and speeds up training — the
paper adopts this from SchNet, we implement it over autograd tensors.
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Module
from repro.nn.tensor import Tensor, as_tensor


class RBFExpansion(Module):
    """Expand scalar distances into Gaussian radial basis features.

    ``Psi(d)[k] = exp(-gamma * (d - mu_k)^2)`` with centers ``mu_k`` spread
    uniformly over ``[0, cutoff]``.

    Args:
        num_centers: number of basis functions (feature width).
        cutoff: largest distance of interest (grid units).
        gamma: sharpness; defaults to ``1 / spacing^2``.
    """

    def __init__(self, num_centers: int = 16, cutoff: float = 30.0,
                 gamma: float | None = None) -> None:
        if num_centers < 2:
            raise ValueError(f"need at least 2 centers, got {num_centers}")
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        self.centers = np.linspace(0.0, cutoff, num_centers)
        spacing = self.centers[1] - self.centers[0]
        self.gamma = gamma if gamma is not None else 1.0 / spacing ** 2
        self.num_centers = num_centers

    def forward(self, distances: Tensor) -> Tensor:
        """Expand a length-n distance tensor to shape (n, num_centers)."""
        d = as_tensor(distances)
        if d.ndim != 1:
            raise ValueError(f"expected 1-D distances, got shape {d.shape}")
        # Match the input dtype so the float32 scoring path is not
        # promoted back to float64 by the (float64) center bank.
        centers = self.centers.astype(d.data.dtype, copy=False)
        diff = d.reshape(-1, 1) - Tensor(centers.reshape(1, -1))
        return ((diff * diff) * (-self.gamma)).exp()
