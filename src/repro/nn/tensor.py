"""The autograd Tensor: a numpy array plus a backward tape.

Supports the operations the 3DGNN, the VAE baseline, and potential
relaxation require: elementwise arithmetic with broadcasting, matmul,
reductions, common nonlinearities, indexing, and shape ops.  Gradients
accumulate into ``.grad`` on tensors created with ``requires_grad=True``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


#: Global tape switch (see :class:`no_grad`).
_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables backward-tape construction.

    Inside the context every new :class:`Tensor` is created grad-free:
    no backward closure, no parent references.  Inference paths (the
    scoring service, ``predicted_metrics``) run under it so a forward
    never retains its intermediates — without it, cache-blocked batched
    forwards keep every finished block's activation graph alive (the
    model's parameters require grad), growing the working set with the
    batch and defeating the L2 blocking.  Reentrant and exception-safe;
    tensors created *outside* keep their tapes.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable array.

    Attributes:
        data: the underlying numpy array — float64 by default; a
            float32 array passes through unconverted (the opt-in
            reduced-precision scoring path threads its dtype from the
            guidance input through every op).
        grad: accumulated gradient (same shape as data), or None.
        requires_grad: whether this tensor participates in autograd.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype != np.float32:
            # The documented float64 default; float32 inputs pass
            # through untouched, so the float32 serving path never
            # takes this branch.
            # repro-lint: disable-next-line=PRE001 -- guarded float64 default
            arr = np.asarray(arr, dtype=np.float64)
        self.data = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = _GRAD_ENABLED and (
            requires_grad or any(p.requires_grad for p in parents))
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None

    # -- basic introspection ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data.copy()

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # -- autograd ---------------------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order over the tape.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- arithmetic ----------------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = as_tensor(other, self.data.dtype)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor(out_data, parents=(self, other), backward=backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor(-self.data, parents=(self,), backward=backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other, self.data.dtype))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other, self.data.dtype) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other, self.data.dtype)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor(out_data, parents=(self, other), backward=backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other, self.data.dtype)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return Tensor(out_data, parents=(self, other), backward=backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other, self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor(out_data, parents=(self,), backward=backward)

    def __matmul__(self, other) -> "Tensor":
        """Matrix product; supports 2D@2D, 1D@2D, 2D@1D, and 1D@1D."""
        other = as_tensor(other)
        a, b = self.data, other.data
        if a.ndim > 2 or b.ndim > 2:
            raise ValueError("matmul supports at most 2-D operands")
        out_data = a @ b

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if a.ndim == 2 and b.ndim == 2:
                    self._accumulate(grad @ b.T)
                elif a.ndim == 1 and b.ndim == 2:
                    self._accumulate(b @ grad)
                elif a.ndim == 2 and b.ndim == 1:
                    self._accumulate(np.outer(grad, b))
                else:  # 1D @ 1D -> scalar
                    self._accumulate(grad * b)
            if other.requires_grad:
                if a.ndim == 2 and b.ndim == 2:
                    other._accumulate(a.T @ grad)
                elif a.ndim == 1 and b.ndim == 2:
                    other._accumulate(np.outer(a, grad))
                elif a.ndim == 2 and b.ndim == 1:
                    other._accumulate(a.T @ grad)
                else:
                    other._accumulate(grad * a)

        return Tensor(out_data, parents=(self, other), backward=backward)

    def affine(self, weight: "Tensor", bias: "Tensor") -> "Tensor":
        """Fused ``self @ weight + bias``: one temporary and one tape node.

        Bit-identical to the two-op chain (the bias add runs in place on
        the fresh matmul output) but skips an intermediate allocation and
        backward closure — the hot path of every Linear layer.
        """
        weight, bias = as_tensor(weight), as_tensor(bias)
        a, w = self.data, weight.data
        if a.ndim > 2 or w.ndim != 2:
            raise ValueError("affine supports 1-D/2-D input and 2-D weight")
        out_data = a @ w
        out_data += bias.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ w.T if a.ndim == 2 else w @ grad)
            if weight.requires_grad:
                weight._accumulate(a.T @ grad if a.ndim == 2
                                   else np.outer(a, grad))
            if bias.requires_grad:
                bias._accumulate(_unbroadcast(grad, bias.shape))

        return Tensor(out_data, parents=(self, weight, bias), backward=backward)

    # -- reductions -----------------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor(out_data, parents=(self,), backward=backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- nonlinearities ----------------------------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor(out_data, parents=(self,), backward=backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor(out_data, parents=(self,), backward=backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-30))

        return Tensor(out_data, parents=(self,), backward=backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor(self.data * mask, parents=(self,), backward=backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor(out_data, parents=(self,), backward=backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor(out_data, parents=(self,), backward=backward)

    def softplus(self) -> "Tensor":
        # Numerically stable: log(1 + exp(x)) = max(x, 0) + log1p(exp(-|x|)).
        out_data = np.maximum(self.data, 0.0) + np.log1p(np.exp(-np.abs(self.data)))
        sig = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sig)

        return Tensor(out_data, parents=(self,), backward=backward)

    # -- shape / indexing ---------------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return Tensor(out_data, parents=(self,), backward=backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    @property
    def T(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor(out_data, parents=(self,), backward=backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor(out_data, parents=(self,), backward=backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows by integer index (supports repeats)."""
        idx = np.asarray(indices, dtype=np.int64)
        out_data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, grad)
            self._accumulate(full)

        return Tensor(out_data, parents=(self,), backward=backward)


def as_tensor(value, dtype=None) -> Tensor:
    """Wrap a value as a (non-grad) Tensor; pass tensors through.

    ``dtype`` is the *operand* dtype hint the binary ops supply: a
    scalar (0-d) operand adopts it so that e.g. ``float32_tensor * 0.5``
    stays float32 instead of promoting through a float64 scalar wrap.
    Array operands keep numpy promotion semantics unchanged.
    """
    if isinstance(value, Tensor):
        return value
    arr = np.asarray(value)
    if arr.dtype != np.float32:
        # Same guarded float64 default as Tensor.__init__.
        # repro-lint: disable-next-line=PRE001 -- float32 stays float32
        arr = np.asarray(arr, dtype=np.float64)
    if dtype is not None and arr.ndim == 0 and arr.dtype != dtype:
        arr = arr.astype(dtype)
    return Tensor(arr)
