"""Command-line interface for the AnalogFold reproduction.

Usage::

    python -m repro.cli table1
    python -m repro.cli place OTA1 --variant B --out ota1b.json
    python -m repro.cli route OTA1 --variant A --guidance guide.json
    python -m repro.cli fold OTA2 --samples 40 --epochs 20
    python -m repro.cli compare OTA1 --variant A --scale fast
    python -m repro.cli export-spice OTA3 --out ota3.sp
    python -m repro.cli serve-save OTA1 --registry reg --name ota1
    python -m repro.cli serve-score OTA1 --registry reg --model ota1 \
        --random 8 --out scores.jsonl
    python -m repro.cli serve-cluster OTA1 --registry reg --model ota1 \
        --workers 2 --random 32 --deadline 10 --out scores.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    IterativeRouter,
    RoutingGrid,
    build_benchmark,
    extract,
    generate_dataset,
    generic_40nm,
    place_benchmark,
    simulate_performance,
)
from repro.graph import build_hetero_graph
from repro.serve import (
    DEFAULT_FORWARD_BLOCK,
    PRECISIONS,
    ClusterConfig,
    ModelRegistry,
    ScoreRequest,
    ScoringService,
    ServeCluster,
    ServeConfig,
)
from repro.core import RelaxationConfig
from repro.core.dataset import route_and_measure
from repro.eval import CROSSTOPO_SCALES, SCALES, evaluate_cell, format_table1, format_table2
from repro.obs import NULL_CONTEXT, RunContext, make_run_id, render_report
from repro.reliability import DegradationPolicy, ReproError
from repro.eval.runtime import runtime_breakdown_table
from repro.io import (
    load_guidance,
    load_placement,
    routing_to_def_text,
    save_guidance,
    save_placement,
)
from repro.io.spice import write_spice
from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer
from repro.router.guidance import uniform_guidance
from repro.simulation.metrics import METRIC_NAMES


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("circuit", help="benchmark name (OTA1..OTA4)")
    parser.add_argument("--variant", default="A", choices="ABCD",
                        help="net-weight placement variant")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(format_table1())
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    circuit = build_benchmark(args.circuit)
    placement = place_benchmark(circuit, variant=args.variant, seed=args.seed,
                                iterations=args.iterations)
    width, height = placement.die_size()
    print(f"placed {len(placement.positions)} devices: "
          f"{width:.2f} x {height:.2f} um, hpwl {placement.total_hpwl():.1f}")
    if args.out:
        save_placement(placement, args.out)
        print(f"wrote {args.out}")
    return 0


def _load_or_place(args: argparse.Namespace):
    circuit = build_benchmark(args.circuit)
    if getattr(args, "placement", None):
        placement = load_placement(circuit, args.placement)
    else:
        placement = place_benchmark(circuit, variant=args.variant,
                                    seed=args.seed, iterations=400)
    return circuit, placement


def _cmd_route(args: argparse.Namespace) -> int:
    circuit, placement = _load_or_place(args)
    tech = generic_40nm()
    grid = RoutingGrid(placement, tech)
    guidance = load_guidance(args.guidance) if args.guidance else None
    start = time.perf_counter()
    result = IterativeRouter(grid, guidance=guidance).route_all()
    elapsed = time.perf_counter() - start
    print(f"routed in {elapsed:.2f}s: success={result.success}, "
          f"wl={result.total_wirelength()}, vias={result.total_vias()}")
    metrics = simulate_performance(circuit, extract(result, grid, tech))
    print(f"post-layout: {metrics}")
    if args.def_out:
        from pathlib import Path
        Path(args.def_out).write_text(routing_to_def_text(result, grid))
        print(f"wrote {args.def_out}")
    return 0 if result.success else 1


def _build_obs(args: argparse.Namespace) -> RunContext:
    """Observability context from --trace/--trace-dir/--metrics-summary.

    ``--trace PATH`` streams spans to PATH; ``--trace-dir DIR`` names the
    trace after the run id inside DIR (handy next to checkpoints); either
    writes the run manifest beside the trace on completion.  A bare
    ``--metrics-summary`` keeps everything in memory.  Without any of the
    three, the returned context is the shared no-op.
    """
    from pathlib import Path

    if args.trace:
        return RunContext.to_file(args.trace)
    if args.trace_dir:
        run_id = make_run_id()
        return RunContext.to_file(
            Path(args.trace_dir) / f"{run_id}.trace.jsonl", run_id=run_id)
    if args.metrics_summary:
        return RunContext()
    return NULL_CONTEXT


def _cmd_fold(args: argparse.Namespace) -> int:
    circuit, placement = _load_or_place(args)
    obs = _build_obs(args)
    fold = AnalogFold(
        circuit, placement, generic_40nm(),
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=args.samples, seed=args.seed),
            gnn=Gnn3dConfig(seed=args.seed),
            training=TrainConfig(epochs=args.epochs, seed=args.seed),
            relaxation=RelaxationConfig(n_restarts=args.restarts,
                                        seed=args.seed,
                                        batched=args.batched_relax),
            policy=DegradationPolicy(
                max_retries=args.max_retries,
                min_valid_fraction=args.min_valid_fraction,
            ),
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            workers=args.workers,
        ),
        obs=obs,
    )
    try:
        result = fold.run()
    finally:
        obs.close()
    report = fold.database.report if fold.database else None
    if report is not None:
        print(f"database: {report.summary()}")
    print(f"AnalogFold metrics: {result.metrics}")
    print(f"winner: candidate {result.winner_index} "
          f"({result.winner_source}), candidate FoMs "
          f"{['%.3f' % f for f in result.candidate_foms]}")
    print(runtime_breakdown_table(result))
    if obs.enabled and args.metrics_summary:
        print()
        print(render_report(obs.aggregates, obs.metrics.counter_values()))
    if obs.trace_path is not None:
        print(f"wrote trace {obs.trace_path}")
        print(f"wrote manifest {obs.manifest_path}")
    if args.guidance_out:
        save_guidance(result.guidance, args.guidance_out)
        print(f"wrote {args.guidance_out}")
    return 0


def _cmd_serve_save(args: argparse.Namespace) -> int:
    circuit, placement = _load_or_place(args)
    tech = generic_40nm()
    name = args.name or args.circuit.lower()
    registry = ModelRegistry(args.registry)
    if args.samples:
        database = generate_dataset(
            circuit, placement, tech,
            DatasetConfig(num_samples=args.samples, seed=args.seed))
        graph = database.graph
        model = Gnn3d(graph.ap_features.shape[1],
                      graph.module_features.shape[1],
                      Gnn3dConfig(seed=args.seed))
        Trainer(model, graph,
                TrainConfig(epochs=args.epochs, seed=args.seed)
                ).fit(database.train_samples())
    else:
        graph = build_hetero_graph(RoutingGrid(placement, tech))
        model = Gnn3d(graph.ap_features.shape[1],
                      graph.module_features.shape[1],
                      Gnn3dConfig(seed=args.seed))
    manifest = registry.save(name, model, graph, precision=args.precision)
    print(f"saved {manifest.name}@{manifest.version} to {args.registry} "
          f"(fingerprint {manifest.graph_fingerprint[-1][:12]}, "
          f"{manifest.precision}, "
          f"{'trained' if args.samples else 'seed-initialized'})")
    return 0


def _serve_requests(args: argparse.Namespace, graph_id: str, num_aps: int,
                    c_max: float):
    """The request stream for serve-score: a JSONL file or random draws."""
    if args.in_path:
        from pathlib import Path

        with Path(args.in_path).open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                yield ScoreRequest(graph_id,
                                   np.asarray(record["guidance"], dtype=float),
                                   request_id=record.get("id"))
    else:
        rng = np.random.default_rng(args.seed)
        margin = min(0.2, c_max / 4.0)
        for index in range(args.random):
            yield ScoreRequest(
                graph_id,
                rng.uniform(margin, c_max - margin, size=(num_aps, 3)),
                request_id=f"rand-{index}")


def _cmd_serve_score(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.reliability import ServeError

    if not args.in_path and not args.random:
        raise ValueError("serve-score needs --in PATH or --random N")
    _circuit, placement = _load_or_place(args)
    graph = build_hetero_graph(RoutingGrid(placement, generic_40nm()))
    name, _, version = args.model.partition("@")
    service = ScoringService(
        ServeConfig(max_batch=args.max_batch, max_queue=args.max_queue,
                    forward_block=args.forward_block))
    manifest = service.register_checkpoint(
        name, ModelRegistry(args.registry), name, graph,
        version=version or None)
    out = (Path(args.out).open("w", encoding="utf-8") if args.out
           else sys.stdout)
    rejected = 0
    try:
        for request in _serve_requests(args, name, graph.num_aps,
                                       manifest.c_max):
            try:
                service.submit(request)
            except ServeError as exc:
                rejected += 1
                out.write(json.dumps(
                    {"id": request.request_id, "graph_id": name,
                     "status": "rejected", "error": str(exc)},
                    sort_keys=True) + "\n")
                continue
            if service.queue_depth >= args.max_batch:
                for result in service.flush():
                    out.write(json.dumps(result.to_dict(),
                                         sort_keys=True) + "\n")
        for result in service.flush():
            out.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
    finally:
        if args.out:
            out.close()
    stats = service.stats
    print(f"scored with {manifest.name}@{manifest.version}: "
          f"ok={stats.ok} failed={stats.failed} rejected={rejected} "
          f"batches={stats.batches} (max_batch={args.max_batch})",
          file=sys.stderr if not args.out else sys.stdout)
    if args.out:
        print(f"wrote {args.out}")
    return 0 if stats.failed == 0 and rejected == 0 else 1


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.reliability import ServeError

    if not args.in_path and not args.random:
        raise ValueError("serve-cluster needs --in PATH or --random N")
    _circuit, placement = _load_or_place(args)
    graph = build_hetero_graph(RoutingGrid(placement, generic_40nm()))
    name, _, version = args.model.partition("@")
    registry = ModelRegistry(args.registry)
    manifest = registry.load_manifest(name, version or None)
    cluster = ServeCluster(
        registry,
        ClusterConfig(workers=args.workers, max_queue=args.max_queue,
                      default_deadline_s=args.deadline,
                      serve=ServeConfig(max_batch=args.max_batch,
                                        max_queue=args.max_queue)))
    cluster.add_endpoint(name, name, graph)
    out = (Path(args.out).open("w", encoding="utf-8") if args.out
           else sys.stdout)
    rejected = 0
    try:
        with cluster:
            for request in _serve_requests(args, name, graph.num_aps,
                                           manifest.c_max):
                try:
                    cluster.submit(name, request.guidance,
                                   request_id=request.request_id)
                except ServeError as exc:
                    rejected += 1
                    out.write(json.dumps(
                        {"id": request.request_id, "graph_id": name,
                         "status": "rejected", "error": str(exc)},
                        sort_keys=True) + "\n")
                    continue
                for result in cluster.take_completed():
                    out.write(json.dumps(result.to_dict(),
                                         sort_keys=True) + "\n")
            for result in cluster.drain():
                out.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
            stats = cluster.stats
    finally:
        if args.out:
            out.close()
    print(f"cluster of {args.workers} served {manifest.name}: "
          f"ok={stats.ok} failed={stats.failed} timeout={stats.timeout} "
          f"shed={stats.shed} rejected={rejected} restarts={stats.restarts}",
          file=sys.stderr if not args.out else sys.stdout)
    if args.out:
        print(f"wrote {args.out}")
    degraded = stats.failed + stats.timeout + stats.shed + rejected
    return 0 if degraded == 0 else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    cell = evaluate_cell(args.circuit, args.variant, scale=args.scale,
                         seed=args.seed)
    print(format_table2([cell]))
    return 0


def _cmd_export_spice(args: argparse.Namespace) -> int:
    circuit = build_benchmark(args.circuit)
    write_spice(circuit, args.out)
    print(f"wrote {args.out}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.io.ingest import ingest_file

    result = ingest_file(args.netlist, top=args.top)
    manifest = result.manifest()
    if args.route:
        placement = place_benchmark(result.circuit, variant=args.variant,
                                    seed=args.seed,
                                    iterations=args.iterations)
        sample = route_and_measure(result.circuit, placement, generic_40nm(),
                                   uniform_guidance(),
                                   testbench_config=result.config)
        manifest["routed"] = {
            "wirelength": sample.result.total_wirelength(),
            "vias": sample.result.total_vias(),
            "metrics": {name: getattr(sample.metrics, name)
                        for name in METRIC_NAMES},
        }
    text = json.dumps(manifest, indent=2)
    if args.manifest_out:
        with open(args.manifest_out, "w") as fh:
            fh.write(text + "\n")
    print(text)
    if args.spice_out:
        write_spice(result.circuit, args.spice_out)
        print(f"wrote {args.spice_out}", file=sys.stderr)
    return 0


def _cmd_crosstopo(args: argparse.Namespace) -> int:
    from repro.eval.crosstopo import format_crosstopo_table, run_crosstopo

    result = run_crosstopo(
        args.netlists,
        train_designs=tuple(args.train.split(",")),
        scale=args.scale,
        seed=args.seed,
    )
    table = format_crosstopo_table(result)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(table + "\n")
    print(table)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AnalogFold reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1").set_defaults(
        func=_cmd_table1)

    p_place = sub.add_parser("place", help="place a benchmark")
    _add_common(p_place)
    p_place.add_argument("--iterations", type=int, default=1000)
    p_place.add_argument("--out", help="write placement JSON")
    p_place.set_defaults(func=_cmd_place)

    p_route = sub.add_parser("route", help="route a benchmark")
    _add_common(p_route)
    p_route.add_argument("--placement", help="placement JSON to load")
    p_route.add_argument("--guidance", help="guidance JSON to apply")
    p_route.add_argument("--def-out", help="write DEF-like routing dump")
    p_route.set_defaults(func=_cmd_route)

    p_fold = sub.add_parser("fold", help="run the AnalogFold pipeline")
    _add_common(p_fold)
    p_fold.add_argument("--placement", help="placement JSON to load")
    p_fold.add_argument("--samples", type=int, default=40)
    p_fold.add_argument("--epochs", type=int, default=20)
    p_fold.add_argument("--restarts", type=int, default=10)
    p_fold.add_argument("--guidance-out", help="write derived guidance JSON")
    p_fold.add_argument("--checkpoint", metavar="PATH",
                        help="append completed database samples to this "
                             "JSONL file as they finish")
    p_fold.add_argument("--resume", action="store_true",
                        help="reuse samples already in --checkpoint instead "
                             "of recomputing them")
    p_fold.add_argument("--workers", type=int, default=1,
                        help="worker processes for database construction "
                             "(output is bit-identical to serial)")
    p_fold.add_argument("--batched-relax", action="store_true",
                        help="run relaxation restarts in joint batched "
                             "waves (one GNN forward per evaluation)")
    p_fold.add_argument("--max-retries", type=int, default=1,
                        help="retries per failed database sample, each with "
                             "perturbed guidance (default 1)")
    p_fold.add_argument("--min-valid-fraction", type=float, default=0.5,
                        help="fraction of requested samples that must "
                             "survive or the run aborts (default 0.5)")
    p_fold.add_argument("--trace", metavar="PATH",
                        help="stream per-stage spans to this JSONL trace "
                             "file (run manifest written beside it)")
    p_fold.add_argument("--trace-dir", metavar="DIR",
                        help="like --trace, but names the trace after the "
                             "run id inside DIR")
    p_fold.add_argument("--metrics-summary", action="store_true",
                        help="print the per-stage breakdown table and "
                             "counters after the run")
    p_fold.set_defaults(func=_cmd_fold)

    p_ssave = sub.add_parser(
        "serve-save", help="snapshot a scoring model into a model registry")
    _add_common(p_ssave)
    p_ssave.add_argument("--placement", help="placement JSON to load")
    p_ssave.add_argument("--registry", required=True, metavar="DIR",
                         help="model-registry root directory")
    p_ssave.add_argument("--name",
                         help="model name (default: circuit, lowercased)")
    p_ssave.add_argument("--samples", type=int, default=0,
                         help="construct a database of this many samples "
                              "and train before saving (0 = save the "
                              "seed-initialized model)")
    p_ssave.add_argument("--epochs", type=int, default=20,
                         help="training epochs when --samples > 0")
    p_ssave.add_argument("--precision", choices=list(PRECISIONS),
                         default=PRECISIONS[0],
                         help="serving execution dtype stamped into the "
                              "manifest (weights persist float64; "
                              "float32 casts on load)")
    p_ssave.set_defaults(func=_cmd_serve_save)

    p_score = sub.add_parser(
        "serve-score",
        help="batch-score guidance candidates through a registry checkpoint")
    _add_common(p_score)
    p_score.add_argument("--placement", help="placement JSON to load")
    p_score.add_argument("--registry", required=True, metavar="DIR")
    p_score.add_argument("--model", required=True, metavar="NAME[@VERSION]",
                         help="registry model to serve (latest version "
                              "when omitted)")
    p_score.add_argument("--in", dest="in_path", metavar="PATH",
                         help="request JSONL, one "
                              '{"id": ..., "guidance": [[h,w,z] per AP]} '
                              "per line")
    p_score.add_argument("--random", type=int, default=0, metavar="N",
                         help="score N random feasible candidates instead "
                              "of reading --in")
    p_score.add_argument("--out", metavar="PATH",
                         help="write result JSONL here (default: stdout)")
    p_score.add_argument("--max-batch", type=int, default=8,
                         help="candidates coalesced per scoring wave")
    p_score.add_argument("--max-queue", type=int, default=64,
                         help="admission bound on pending requests")
    p_score.add_argument("--forward-block", type=int,
                         default=DEFAULT_FORWARD_BLOCK,
                         help="candidates per union forward inside a wave")
    p_score.set_defaults(func=_cmd_serve_score)

    p_cluster = sub.add_parser(
        "serve-cluster",
        help="score through a supervised multi-worker serving cluster")
    _add_common(p_cluster)
    p_cluster.add_argument("--placement", help="placement JSON to load")
    p_cluster.add_argument("--registry", required=True, metavar="DIR")
    p_cluster.add_argument("--model", required=True,
                           metavar="NAME[@VERSION]",
                           help="registry model to serve (latest version "
                                "when omitted)")
    p_cluster.add_argument("--in", dest="in_path", metavar="PATH",
                           help="request JSONL, one "
                                '{"id": ..., "guidance": [[h,w,z] per AP]} '
                                "per line")
    p_cluster.add_argument("--random", type=int, default=0, metavar="N",
                           help="score N random feasible candidates "
                                "instead of reading --in")
    p_cluster.add_argument("--out", metavar="PATH",
                           help="write result JSONL here (default: stdout)")
    p_cluster.add_argument("--workers", type=int, default=2,
                           help="supervised worker processes")
    p_cluster.add_argument("--deadline", type=float, default=30.0,
                           help="per-request deadline, seconds")
    p_cluster.add_argument("--max-batch", type=int, default=8,
                           help="per-worker micro-batch size")
    p_cluster.add_argument("--max-queue", type=int, default=64,
                           help="global pending-queue bound (sheds "
                                "earliest-deadline-first beyond it)")
    p_cluster.set_defaults(func=_cmd_serve_cluster)

    p_cmp = sub.add_parser("compare", help="Table 2 row for one cell")
    _add_common(p_cmp)
    p_cmp.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    p_cmp.set_defaults(func=_cmd_compare)

    p_sp = sub.add_parser("export-spice", help="write a benchmark netlist")
    p_sp.add_argument("circuit")
    p_sp.add_argument("--out", required=True)
    p_sp.set_defaults(func=_cmd_export_spice)

    p_ing = sub.add_parser(
        "ingest",
        help="ingest a wild-dialect SPICE netlist (subckt hierarchies, "
             ".param, unit suffixes) and print the ingest manifest")
    p_ing.add_argument("netlist", help="path to the .sp file")
    p_ing.add_argument("--top", help="subcircuit to flatten "
                                     "(default: auto-detected root)")
    p_ing.add_argument("--variant", default="A", choices="ABCD")
    p_ing.add_argument("--seed", type=int, default=0)
    p_ing.add_argument("--iterations", type=int, default=300,
                       help="placement iterations when --route is given")
    p_ing.add_argument("--route", action="store_true",
                       help="also place, route, and simulate the ingested "
                            "circuit; adds a 'routed' manifest section")
    p_ing.add_argument("--manifest-out", metavar="PATH",
                       help="write the manifest JSON here too")
    p_ing.add_argument("--spice-out", metavar="PATH",
                       help="re-export in the repo's round-trip dialect")
    p_ing.set_defaults(func=_cmd_ingest)

    p_xt = sub.add_parser(
        "crosstopo",
        help="train on benchmark OTAs, score ingested netlists zero-shot")
    p_xt.add_argument("netlists", nargs="+",
                      help="wild-dialect .sp files to evaluate on")
    p_xt.add_argument("--train", default="OTA1,OTA2",
                      help="comma-separated training benchmarks")
    p_xt.add_argument("--scale", default="smoke",
                      choices=sorted(CROSSTOPO_SCALES))
    p_xt.add_argument("--seed", type=int, default=0)
    p_xt.add_argument("--out", metavar="PATH",
                      help="write the markdown table here too")
    p_xt.set_defaults(func=_cmd_crosstopo)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Config validation (__post_init__) errors: bad flag values.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
