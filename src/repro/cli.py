"""Command-line interface for the AnalogFold reproduction.

Usage::

    python -m repro.cli table1
    python -m repro.cli place OTA1 --variant B --out ota1b.json
    python -m repro.cli route OTA1 --variant A --guidance guide.json
    python -m repro.cli fold OTA2 --samples 40 --epochs 20
    python -m repro.cli compare OTA1 --variant A --scale fast
    python -m repro.cli export-spice OTA3 --out ota3.sp
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    IterativeRouter,
    RoutingGrid,
    build_benchmark,
    extract,
    generic_40nm,
    place_benchmark,
    simulate_performance,
)
from repro.core import RelaxationConfig
from repro.eval import SCALES, evaluate_cell, format_table1, format_table2
from repro.obs import NULL_CONTEXT, RunContext, make_run_id, render_report
from repro.reliability import DegradationPolicy, ReproError
from repro.eval.runtime import runtime_breakdown_table
from repro.io import (
    load_guidance,
    load_placement,
    routing_to_def_text,
    save_guidance,
    save_placement,
)
from repro.io.spice import write_spice
from repro.model import Gnn3dConfig, TrainConfig


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("circuit", help="benchmark name (OTA1..OTA4)")
    parser.add_argument("--variant", default="A", choices="ABCD",
                        help="net-weight placement variant")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(format_table1())
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    circuit = build_benchmark(args.circuit)
    placement = place_benchmark(circuit, variant=args.variant, seed=args.seed,
                                iterations=args.iterations)
    width, height = placement.die_size()
    print(f"placed {len(placement.positions)} devices: "
          f"{width:.2f} x {height:.2f} um, hpwl {placement.total_hpwl():.1f}")
    if args.out:
        save_placement(placement, args.out)
        print(f"wrote {args.out}")
    return 0


def _load_or_place(args: argparse.Namespace):
    circuit = build_benchmark(args.circuit)
    if getattr(args, "placement", None):
        placement = load_placement(circuit, args.placement)
    else:
        placement = place_benchmark(circuit, variant=args.variant,
                                    seed=args.seed, iterations=400)
    return circuit, placement


def _cmd_route(args: argparse.Namespace) -> int:
    circuit, placement = _load_or_place(args)
    tech = generic_40nm()
    grid = RoutingGrid(placement, tech)
    guidance = load_guidance(args.guidance) if args.guidance else None
    start = time.perf_counter()
    result = IterativeRouter(grid, guidance=guidance).route_all()
    elapsed = time.perf_counter() - start
    print(f"routed in {elapsed:.2f}s: success={result.success}, "
          f"wl={result.total_wirelength()}, vias={result.total_vias()}")
    metrics = simulate_performance(circuit, extract(result, grid, tech))
    print(f"post-layout: {metrics}")
    if args.def_out:
        from pathlib import Path
        Path(args.def_out).write_text(routing_to_def_text(result, grid))
        print(f"wrote {args.def_out}")
    return 0 if result.success else 1


def _build_obs(args: argparse.Namespace) -> RunContext:
    """Observability context from --trace/--trace-dir/--metrics-summary.

    ``--trace PATH`` streams spans to PATH; ``--trace-dir DIR`` names the
    trace after the run id inside DIR (handy next to checkpoints); either
    writes the run manifest beside the trace on completion.  A bare
    ``--metrics-summary`` keeps everything in memory.  Without any of the
    three, the returned context is the shared no-op.
    """
    from pathlib import Path

    if args.trace:
        return RunContext.to_file(args.trace)
    if args.trace_dir:
        run_id = make_run_id()
        return RunContext.to_file(
            Path(args.trace_dir) / f"{run_id}.trace.jsonl", run_id=run_id)
    if args.metrics_summary:
        return RunContext()
    return NULL_CONTEXT


def _cmd_fold(args: argparse.Namespace) -> int:
    circuit, placement = _load_or_place(args)
    obs = _build_obs(args)
    fold = AnalogFold(
        circuit, placement, generic_40nm(),
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=args.samples, seed=args.seed),
            gnn=Gnn3dConfig(seed=args.seed),
            training=TrainConfig(epochs=args.epochs, seed=args.seed),
            relaxation=RelaxationConfig(n_restarts=args.restarts,
                                        seed=args.seed,
                                        batched=args.batched_relax),
            policy=DegradationPolicy(
                max_retries=args.max_retries,
                min_valid_fraction=args.min_valid_fraction,
            ),
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            workers=args.workers,
        ),
        obs=obs,
    )
    try:
        result = fold.run()
    finally:
        obs.close()
    report = fold.database.report if fold.database else None
    if report is not None:
        print(f"database: {report.summary()}")
    print(f"AnalogFold metrics: {result.metrics}")
    print(f"winner: candidate {result.winner_index} "
          f"({result.winner_source}), candidate FoMs "
          f"{['%.3f' % f for f in result.candidate_foms]}")
    print(runtime_breakdown_table(result))
    if obs.enabled and args.metrics_summary:
        print()
        print(render_report(obs.aggregates, obs.metrics.counter_values()))
    if obs.trace_path is not None:
        print(f"wrote trace {obs.trace_path}")
        print(f"wrote manifest {obs.manifest_path}")
    if args.guidance_out:
        save_guidance(result.guidance, args.guidance_out)
        print(f"wrote {args.guidance_out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    cell = evaluate_cell(args.circuit, args.variant, scale=args.scale,
                         seed=args.seed)
    print(format_table2([cell]))
    return 0


def _cmd_export_spice(args: argparse.Namespace) -> int:
    circuit = build_benchmark(args.circuit)
    write_spice(circuit, args.out)
    print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AnalogFold reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1").set_defaults(
        func=_cmd_table1)

    p_place = sub.add_parser("place", help="place a benchmark")
    _add_common(p_place)
    p_place.add_argument("--iterations", type=int, default=1000)
    p_place.add_argument("--out", help="write placement JSON")
    p_place.set_defaults(func=_cmd_place)

    p_route = sub.add_parser("route", help="route a benchmark")
    _add_common(p_route)
    p_route.add_argument("--placement", help="placement JSON to load")
    p_route.add_argument("--guidance", help="guidance JSON to apply")
    p_route.add_argument("--def-out", help="write DEF-like routing dump")
    p_route.set_defaults(func=_cmd_route)

    p_fold = sub.add_parser("fold", help="run the AnalogFold pipeline")
    _add_common(p_fold)
    p_fold.add_argument("--placement", help="placement JSON to load")
    p_fold.add_argument("--samples", type=int, default=40)
    p_fold.add_argument("--epochs", type=int, default=20)
    p_fold.add_argument("--restarts", type=int, default=10)
    p_fold.add_argument("--guidance-out", help="write derived guidance JSON")
    p_fold.add_argument("--checkpoint", metavar="PATH",
                        help="append completed database samples to this "
                             "JSONL file as they finish")
    p_fold.add_argument("--resume", action="store_true",
                        help="reuse samples already in --checkpoint instead "
                             "of recomputing them")
    p_fold.add_argument("--workers", type=int, default=1,
                        help="worker processes for database construction "
                             "(output is bit-identical to serial)")
    p_fold.add_argument("--batched-relax", action="store_true",
                        help="run relaxation restarts in joint batched "
                             "waves (one GNN forward per evaluation)")
    p_fold.add_argument("--max-retries", type=int, default=1,
                        help="retries per failed database sample, each with "
                             "perturbed guidance (default 1)")
    p_fold.add_argument("--min-valid-fraction", type=float, default=0.5,
                        help="fraction of requested samples that must "
                             "survive or the run aborts (default 0.5)")
    p_fold.add_argument("--trace", metavar="PATH",
                        help="stream per-stage spans to this JSONL trace "
                             "file (run manifest written beside it)")
    p_fold.add_argument("--trace-dir", metavar="DIR",
                        help="like --trace, but names the trace after the "
                             "run id inside DIR")
    p_fold.add_argument("--metrics-summary", action="store_true",
                        help="print the per-stage breakdown table and "
                             "counters after the run")
    p_fold.set_defaults(func=_cmd_fold)

    p_cmp = sub.add_parser("compare", help="Table 2 row for one cell")
    _add_common(p_cmp)
    p_cmp.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    p_cmp.set_defaults(func=_cmd_compare)

    p_sp = sub.add_parser("export-spice", help="write a benchmark netlist")
    p_sp.add_argument("circuit")
    p_sp.add_argument("--out", required=True)
    p_sp.set_defaults(func=_cmd_export_spice)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Config validation (__post_init__) errors: bad flag values.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
