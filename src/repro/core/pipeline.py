"""The end-to-end AnalogFold flow (Figure 1(c) + Figure 2).

Stages, each timed for the Figure 5 runtime breakdown:

1. **Construct database** — sample guidance, route, extract, simulate.
2. **Model training** — fit the 3DGNN on the database.
3. **Routing guide generation** — pool-assisted potential relaxation.
4. **Guided detailed routing** — route with the derived guidance, simulate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import (
    Database,
    DatasetConfig,
    generate_dataset,
    route_and_measure,
)
from repro.core.potential import PotentialFunction
from repro.core.relaxation import PotentialRelaxer, RelaxationConfig, RelaxedGuidance
from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer
from repro.netlist.circuit import Circuit
from repro.placement.layout import Placement
from repro.router import RouterConfig
from repro.router.guidance import RoutingGuidance
from repro.router.result import RoutingResult
from repro.simulation import TestbenchConfig
from repro.simulation.metrics import FoMWeights, PerformanceMetrics


@dataclass
class AnalogFoldConfig:
    """All knobs of the AnalogFold pipeline."""

    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    gnn: Gnn3dConfig = field(default_factory=Gnn3dConfig)
    training: TrainConfig = field(default_factory=TrainConfig)
    relaxation: RelaxationConfig = field(default_factory=RelaxationConfig)
    fom_weights: FoMWeights = field(default_factory=FoMWeights)
    router: RouterConfig | None = None
    testbench: TestbenchConfig | None = None
    #: "potential" routes only the best-predicted guidance; "simulation"
    #: routes every derived guidance and keeps the best measured FoM.
    select_by: str = "simulation"
    #: With select_by="simulation", also consider the database's best
    #: already-routed sample as a candidate (no extra routing cost).
    include_database_best: bool = True

    def __post_init__(self) -> None:
        if self.select_by not in ("potential", "simulation"):
            raise ValueError(f"unknown select_by {self.select_by!r}")


@dataclass
class AnalogFoldResult:
    """Outcome of one AnalogFold run.

    Attributes:
        guidance: the guidance actually used for the final routing.
        routing: the final routing solution.
        metrics: measured post-layout metrics of the final routing.
        derived: all relaxation outputs (top-N_derive).
        stage_seconds: wall-clock per stage, keyed by stage name
            (Figure 5's categories).
    """

    guidance: RoutingGuidance
    routing: RoutingResult
    metrics: PerformanceMetrics
    derived: list[RelaxedGuidance] = field(default_factory=list)
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def runtime_breakdown(self) -> dict[str, float]:
        """Stage fractions of total runtime (Figure 5)."""
        total = self.total_seconds
        if total <= 0:
            return {k: 0.0 for k in self.stage_seconds}
        return {k: v / total for k, v in self.stage_seconds.items()}


class AnalogFold:
    """Performance-driven routing-guidance generator for one design.

    Args:
        circuit: the circuit to route.
        placement: its placement.
        tech: technology.
        config: pipeline configuration.
    """

    def __init__(
        self,
        circuit: Circuit,
        placement: Placement,
        tech,
        config: AnalogFoldConfig | None = None,
    ) -> None:
        self.circuit = circuit
        self.placement = placement
        self.tech = tech
        self.config = config or AnalogFoldConfig()
        self.database: Database | None = None
        self.model: Gnn3d | None = None
        self.stage_seconds: dict[str, float] = {}

    # -- stages ---------------------------------------------------------------------

    def build_database(self) -> Database:
        """Stage 1: construct the training database."""
        start = time.perf_counter()
        self.database = generate_dataset(
            self.circuit, self.placement, self.tech,
            config=self.config.dataset,
            router_config=self.config.router,
            testbench_config=self.config.testbench,
        )
        self.stage_seconds["construct_database"] = time.perf_counter() - start
        return self.database

    def train(self) -> Gnn3d:
        """Stage 2: train the 3DGNN on the database."""
        if self.database is None:
            self.build_database()
        start = time.perf_counter()
        graph = self.database.graph
        self.model = Gnn3d(
            graph.ap_features.shape[1],
            graph.module_features.shape[1],
            self.config.gnn,
        )
        trainer = Trainer(self.model, graph, self.config.training)
        trainer.fit(self.database.train_samples())
        self.stage_seconds["model_training"] = time.perf_counter() - start
        return self.model

    def derive_guidance(self) -> list[RelaxedGuidance]:
        """Stage 3: relax the potential into top-N guidance solutions."""
        if self.model is None:
            self.train()
        start = time.perf_counter()
        potential = PotentialFunction(
            self.model, self.database.graph, weights=self.config.fom_weights,
            c_max=self.config.dataset.c_max,
        )
        relaxer = PotentialRelaxer(self.config.relaxation)
        derived = relaxer.run(potential, seed_guidance=self._best_database_guidance())
        self.stage_seconds["guide_generation"] = time.perf_counter() - start
        return derived

    def _ranked_database_samples(self):
        weights = self.config.fom_weights
        return sorted(self.database.samples,
                      key=lambda s: weights.fom(s.metrics))

    def _best_database_guidance(self) -> list:
        """Top measured guidance points, as relaxation seeds (Fig. 2(b))."""
        keys = self.database.graph.ap_keys
        top = self._ranked_database_samples()[: self.config.relaxation.seed_points]
        return [s.guidance.as_array(keys) for s in top]

    def route_with_guidance(self, guidance: RoutingGuidance):
        """Route the design under a guidance and simulate the result."""
        return route_and_measure(
            self.circuit, self.placement, self.tech, guidance,
            router_config=self.config.router,
            testbench_config=self.config.testbench,
            routing_pitch=self.config.dataset.routing_pitch,
        )

    # -- orchestration -----------------------------------------------------------------

    def _to_routing_guidance(self, relaxed: RelaxedGuidance) -> RoutingGuidance:
        graph = self.database.graph
        guidance = RoutingGuidance(c_max=self.config.dataset.c_max)
        for key, vec in zip(graph.ap_keys, relaxed.guidance):
            guidance.set(key, np.asarray(vec))
        return guidance

    def run(self) -> AnalogFoldResult:
        """Run the full pipeline and return the final routed solution."""
        derived = self.derive_guidance()
        if not derived:
            raise RuntimeError("relaxation produced no guidance")

        start = time.perf_counter()
        weights = self.config.fom_weights
        if self.config.select_by == "simulation":
            candidates = [
                self.route_with_guidance(self._to_routing_guidance(d))
                for d in derived
            ]
            if self.config.include_database_best:
                candidates.append(self._ranked_database_samples()[0])
            best_sample = min(candidates, key=lambda s: weights.fom(s.metrics))
        else:
            best_derived = min(derived, key=lambda d: d.potential)
            best_sample = self.route_with_guidance(
                self._to_routing_guidance(best_derived)
            )
        self.stage_seconds["guided_routing"] = time.perf_counter() - start

        return AnalogFoldResult(
            guidance=best_sample.guidance,
            routing=best_sample.result,
            metrics=best_sample.metrics,
            derived=derived,
            stage_seconds=dict(self.stage_seconds),
        )
