"""The end-to-end AnalogFold flow (Figure 1(c) + Figure 2).

Stages, each timed for the Figure 5 runtime breakdown:

1. **Construct database** — sample guidance, route, extract, simulate.
2. **Model training** — fit the 3DGNN on the database.
3. **Routing guide generation** — pool-assisted potential relaxation.
4. **Guided detailed routing** — route with the derived guidance, simulate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import (
    Database,
    DatasetConfig,
    generate_dataset,
    route_and_measure,
)
from repro.core.potential import PotentialFunction
from repro.core.relaxation import PotentialRelaxer, RelaxationConfig, RelaxedGuidance
from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer
from repro.netlist.circuit import Circuit
from repro.obs import NULL_CONTEXT, RunContext
from repro.perf.timing import StageTimer
from repro.placement.layout import Placement
from repro.reliability.errors import RelaxationError, ReproError, RoutingError
from repro.reliability.policy import DegradationPolicy
from repro.router import RouterConfig
from repro.router.guidance import RoutingGuidance
from repro.router.result import RoutingResult
from repro.simulation import TestbenchConfig
from repro.simulation.metrics import FoMWeights, PerformanceMetrics


@dataclass
class AnalogFoldConfig:
    """All knobs of the AnalogFold pipeline."""

    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    gnn: Gnn3dConfig = field(default_factory=Gnn3dConfig)
    training: TrainConfig = field(default_factory=TrainConfig)
    relaxation: RelaxationConfig = field(default_factory=RelaxationConfig)
    fom_weights: FoMWeights = field(default_factory=FoMWeights)
    router: RouterConfig | None = None
    testbench: TestbenchConfig | None = None
    #: "potential" routes only the best-predicted guidance; "simulation"
    #: routes every derived guidance and keeps the best measured FoM.
    select_by: str = "simulation"
    #: With select_by="simulation", also consider the database's best
    #: already-routed sample as a candidate (no extra routing cost).
    include_database_best: bool = True
    #: Degradation policy for database construction and candidate routing.
    policy: DegradationPolicy = field(default_factory=DegradationPolicy)
    #: When set, database samples are checkpointed to this JSONL file.
    checkpoint_path: str | None = None
    #: Reuse completed samples from ``checkpoint_path`` instead of
    #: rebuilding them.
    resume: bool = False
    #: Worker processes for database construction (1 = in-process);
    #: parallel output is bit-identical to serial.
    workers: int = 1

    def __post_init__(self) -> None:
        if self.select_by not in ("potential", "simulation"):
            raise ValueError(f"unknown select_by {self.select_by!r}")


@dataclass
class AnalogFoldResult:
    """Outcome of one AnalogFold run.

    Attributes:
        guidance: the guidance actually used for the final routing.
        routing: the final routing solution.
        metrics: measured post-layout metrics of the final routing.
        derived: all relaxation outputs (top-N_derive).
        stage_seconds: wall-clock per stage, keyed by stage name
            (Figure 5's categories).
        stage_stats: fine-grained hot-path timings from the pipeline's
            :class:`~repro.perf.timing.StageTimer` —
            ``{stage: {"seconds": s, "calls": n}}`` over the canonical
            route/extract/simulate/train/relax stages.
        candidate_foms: measured FoM of every routed candidate, in
            evaluation order (derived guidances first, then the database
            best when ``include_database_best``); ``inf`` marks a
            candidate whose routing failed and was skipped.
        winner_index: index into ``candidate_foms`` of the candidate
            actually returned.
        winner_source: ``"derived"`` when the winner came from
            relaxation, ``"database"`` when the database's best
            already-routed sample won.
    """

    guidance: RoutingGuidance
    routing: RoutingResult
    metrics: PerformanceMetrics
    derived: list[RelaxedGuidance] = field(default_factory=list)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    stage_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    candidate_foms: list[float] = field(default_factory=list)
    winner_index: int = 0
    winner_source: str = "derived"

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def runtime_breakdown(self) -> dict[str, float]:
        """Stage fractions of total runtime (Figure 5)."""
        total = self.total_seconds
        if total <= 0:
            return {k: 0.0 for k in self.stage_seconds}
        return {k: v / total for k, v in self.stage_seconds.items()}


class AnalogFold:
    """Performance-driven routing-guidance generator for one design.

    Args:
        circuit: the circuit to route.
        placement: its placement.
        tech: technology.
        config: pipeline configuration.
        obs: observability context; the default disabled context makes
            every emission a no-op.  When enabled, each pipeline stage
            opens a root ``stage.*`` span under which the fine-grained
            spans (``dataset.sample``, ``route.net``, ``train.epoch``,
            ``relax.restart``, ...) nest.
    """

    def __init__(
        self,
        circuit: Circuit,
        placement: Placement,
        tech,
        config: AnalogFoldConfig | None = None,
        obs: RunContext | None = None,
    ) -> None:
        self.circuit = circuit
        self.placement = placement
        self.tech = tech
        self.config = config or AnalogFoldConfig()
        self.obs = obs if obs is not None else NULL_CONTEXT
        self.database: Database | None = None
        self.model: Gnn3d | None = None
        self.stage_seconds: dict[str, float] = {}
        #: Hot-path timer fed by every stage (route/extract/simulate via
        #: dataset construction and guided routing, train, relax).
        self.timer = StageTimer()

    # -- stages ---------------------------------------------------------------------

    def build_database(self) -> Database:
        """Stage 1: construct the training database."""
        start = time.perf_counter()
        with self.obs.span("stage.construct_database"):
            self.database = generate_dataset(
                self.circuit, self.placement, self.tech,
                config=self.config.dataset,
                router_config=self.config.router,
                testbench_config=self.config.testbench,
                policy=self.config.policy,
                checkpoint_path=self.config.checkpoint_path,
                resume=self.config.resume,
                workers=self.config.workers,
                timer=self.timer,
                obs=self.obs,
            )
        self.stage_seconds["construct_database"] = time.perf_counter() - start
        return self.database

    def train(self) -> Gnn3d:
        """Stage 2: train the 3DGNN on the database."""
        if self.database is None:
            self.build_database()
        start = time.perf_counter()
        with self.obs.span("stage.model_training"):
            graph = self.database.graph
            self.model = Gnn3d(
                graph.ap_features.shape[1],
                graph.module_features.shape[1],
                self.config.gnn,
            )
            trainer = Trainer(self.model, graph, self.config.training,
                              obs=self.obs)
            with self.obs.span("train", timer=self.timer):
                trainer.fit(self.database.train_samples())
        self.stage_seconds["model_training"] = time.perf_counter() - start
        return self.model

    def derive_guidance(self) -> list[RelaxedGuidance]:
        """Stage 3: relax the potential into top-N guidance solutions."""
        if self.model is None:
            self.train()
        start = time.perf_counter()
        with self.obs.span("stage.guide_generation"):
            potential = PotentialFunction(
                self.model, self.database.graph,
                weights=self.config.fom_weights,
                c_max=self.config.dataset.c_max,
            )
            relaxer = PotentialRelaxer(self.config.relaxation, obs=self.obs)
            with self.obs.span("relax", timer=self.timer):
                derived = relaxer.run(
                    potential, seed_guidance=self._best_database_guidance())
        self.stage_seconds["guide_generation"] = time.perf_counter() - start
        return derived

    def _ranked_database_samples(self):
        weights = self.config.fom_weights
        return sorted(self.database.samples,
                      key=lambda s: weights.fom(s.metrics))

    def _best_database_guidance(self) -> list:
        """Top measured guidance points, as relaxation seeds (Fig. 2(b))."""
        keys = self.database.graph.ap_keys
        top = self._ranked_database_samples()[: self.config.relaxation.seed_points]
        return [s.guidance.as_array(keys) for s in top]

    def route_with_guidance(self, guidance: RoutingGuidance):
        """Route the design under a guidance and simulate the result."""
        return route_and_measure(
            self.circuit, self.placement, self.tech, guidance,
            router_config=self.config.router,
            testbench_config=self.config.testbench,
            routing_pitch=self.config.dataset.routing_pitch,
            timer=self.timer,
            obs=self.obs,
        )

    # -- orchestration -----------------------------------------------------------------

    def _to_routing_guidance(self, relaxed: RelaxedGuidance) -> RoutingGuidance:
        graph = self.database.graph
        guidance = RoutingGuidance(c_max=self.config.dataset.c_max)
        for key, vec in zip(graph.ap_keys, relaxed.guidance):
            guidance.set(key, np.asarray(vec))
        return guidance

    def run(self) -> AnalogFoldResult:
        """Run the full pipeline and return the final routed solution.

        With ``select_by="simulation"``, candidates whose guided routing
        fails are skipped (FoM recorded as ``inf``); at least one
        candidate must route or a :class:`RoutingError` is raised.
        """
        derived = self.derive_guidance()
        if not derived:
            raise RelaxationError("relaxation produced no guidance",
                                  stage="relaxation")

        start = time.perf_counter()
        weights = self.config.fom_weights
        candidates: list[tuple[object, str]] = []
        candidate_foms: list[float] = []
        with self.obs.span("stage.guided_routing"):
            if self.config.select_by == "simulation":
                for d in derived:
                    try:
                        sample = self.route_with_guidance(
                            self._to_routing_guidance(d))
                    except ReproError:
                        candidate_foms.append(float("inf"))
                        continue
                    candidates.append((sample, "derived"))
                    candidate_foms.append(weights.fom(sample.metrics))
                if self.config.include_database_best:
                    db_best = self._ranked_database_samples()[0]
                    candidates.append((db_best, "database"))
                    candidate_foms.append(weights.fom(db_best.metrics))
                if not candidates:
                    raise RoutingError(
                        f"all {len(derived)} derived guidance candidates "
                        f"failed guided routing",
                        stage="guided_routing",
                    )
                best_sample, winner_source = min(
                    candidates, key=lambda pair: weights.fom(pair[0].metrics))
            else:
                best_derived = min(derived, key=lambda d: d.potential)
                best_sample = self.route_with_guidance(
                    self._to_routing_guidance(best_derived)
                )
                winner_source = "derived"
                candidate_foms.append(weights.fom(best_sample.metrics))
            winner_index = candidate_foms.index(min(candidate_foms))
        self.stage_seconds["guided_routing"] = time.perf_counter() - start

        return AnalogFoldResult(
            guidance=best_sample.guidance,
            routing=best_sample.result,
            metrics=best_sample.metrics,
            derived=derived,
            stage_seconds=dict(self.stage_seconds),
            stage_stats=self.timer.to_dict(),
            candidate_foms=candidate_foms,
            winner_index=winner_index,
            winner_source=winner_source,
        )
