"""The routing-guidance potential ``V(C)`` (Eq. 7-8).

``V(C) = w_FoM . f_theta(G_H, C) + g(C)`` where ``f_theta`` is the trained
3DGNN (predicting normalized metrics), ``w_FoM`` is the signed FoM weight
vector, and ``g`` is an interior-point log-barrier keeping every guidance
component inside the open feasible region ``(0, c_max)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.model.gnn3d import Gnn3d
from repro.nn import Tensor, no_grad
from repro.reliability.errors import RelaxationError
from repro.simulation.metrics import FoMWeights


@dataclass
class PotentialStats:
    """Evaluation counters (reset with :meth:`PotentialFunction.reset_stats`).

    Attributes:
        evals: scalar :meth:`~PotentialFunction.value_and_grad` calls.
        batched_evals: :meth:`~PotentialFunction.value_and_grad_batch` calls.
        candidates: total candidates across all batched evaluations.
        forwards: GNN forward-backward passes actually executed — the
            quantity batching reduces (one batched eval of ``B``
            candidates costs one forward instead of ``B``).

    The relaxer reads deltas of these counters to emit the
    ``gnn_forwards`` and ``lbfgs_evals`` observability metrics (see
    ``docs/OBSERVABILITY.md``), so they must stay cumulative within a
    run and only reset via :meth:`PotentialFunction.reset_stats`.
    """

    evals: int = 0
    batched_evals: int = 0
    candidates: int = 0
    forwards: int = 0


class PotentialFunction:
    """Differentiable potential over flattened guidance vectors.

    Args:
        model: trained 3DGNN.
        graph: the design's heterogeneous graph (``G_H^val`` in Eq. 7).
        weights: figure-of-merit weights (equal by default, per the paper).
        c_max: upper bound of the feasible guidance region.
        barrier_r: the barrier strength ``r`` of Eq. 8 (small positive).
    """

    def __init__(
        self,
        model: Gnn3d,
        graph: HeteroGraph,
        weights: FoMWeights | None = None,
        c_max: float = 4.0,
        barrier_r: float = 0.01,
    ) -> None:
        if c_max <= 0:
            raise ValueError(f"c_max must be positive, got {c_max}")
        if barrier_r <= 0:
            raise ValueError(f"barrier_r must be positive, got {barrier_r}")
        self.model = model
        self.graph = graph
        self.weights = weights or FoMWeights()
        self.c_max = c_max
        self.barrier_r = barrier_r
        self._w_signed = self.weights.as_signed_vector()
        self.stats = PotentialStats()

    @property
    def num_variables(self) -> int:
        return self.graph.num_aps * 3

    def reset_stats(self) -> PotentialStats:
        """Install and return fresh evaluation counters."""
        self.stats = PotentialStats()
        return self.stats

    def barrier(self, c: Tensor) -> Tensor:
        """Interior-point penalty ``g(C)`` of Eq. 8."""
        return (c.log() + (Tensor(np.array(self.c_max)) - c).log()).sum() * (
            -self.barrier_r
        )

    def value_and_grad(self, c_flat: np.ndarray) -> tuple[float, np.ndarray]:
        """Potential value and gradient for a flattened guidance vector.

        Infeasible inputs (outside the open region) return +inf with a
        gradient pushing back toward feasibility, so line searches recover.
        """
        self.stats.evals += 1
        c_arr = np.asarray(c_flat, dtype=float).reshape(self.graph.num_aps, 3)
        eps = 1e-9
        if (c_arr <= eps).any() or (c_arr >= self.c_max - eps).any():
            grad = np.where(c_arr <= eps, -1.0, np.where(
                c_arr >= self.c_max - eps, 1.0, 0.0))
            return float("inf"), grad.reshape(-1)

        self.stats.forwards += 1
        c = Tensor(c_arr, requires_grad=True)
        pred = self.model(self.graph, c)
        fom = (pred * Tensor(self._w_signed)).sum()
        total = fom + self.barrier(c)
        total.backward()
        value = total.item()
        grad = c.grad.reshape(-1).copy()
        if not np.isfinite(value) or not np.isfinite(grad).all():
            # A NaN from the model would silently poison L-BFGS; surface
            # it as a typed error so the relaxer can drop the restart.
            raise RelaxationError(
                f"non-finite potential evaluation (value {value})",
                stage="relaxation",
                details={"value": value,
                         "grad_finite": bool(np.isfinite(grad).all())},
            )
        return value, grad

    def value_and_grad_batch(
        self, c_batch: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Potentials and gradients for ``B`` candidates in one forward.

        The candidates are independent (the batched GNN forward runs them
        as a disjoint union, and barrier terms are per-row), so row ``b``
        of the returned ``(B,)`` values and ``(B, num_variables)``
        gradients equals a scalar :meth:`value_and_grad` of that row —
        while the whole batch costs a single forward-backward pass.

        Infeasible rows get ``+inf`` and a push-back gradient, like the
        scalar path; feasible rows are unaffected by them.
        """
        c_arr = np.asarray(c_batch, dtype=float)
        if c_arr.ndim != 2 or c_arr.shape[1] != self.num_variables:
            raise ValueError(
                f"candidate batch shape {c_arr.shape} != "
                f"(B, {self.num_variables})"
            )
        batch = c_arr.shape[0]
        self.stats.batched_evals += 1
        self.stats.candidates += batch

        eps = 1e-9
        infeasible = ((c_arr <= eps) | (c_arr >= self.c_max - eps)
                      ).any(axis=1)
        # Clip so infeasible rows still flow through log/forward without
        # NaN; their outputs are overwritten below.
        c_safe = np.clip(c_arr, eps * 2, self.c_max - eps * 2)

        self.stats.forwards += 1
        c = Tensor(c_safe.reshape(batch, self.graph.num_aps, 3),
                   requires_grad=True)
        # Explicitly the cache-blocked batched forward: relaxation waves
        # (pool sizes 6/12 by default) ride the same per-(graph, B)
        # union plans the scoring service uses.
        pred = self.model.forward_batch(self.graph, c)  # (B, num_metrics)
        fom = (pred * Tensor(np.tile(self._w_signed, (batch, 1)))).sum(axis=1)
        flat = c.reshape(batch, self.num_variables)
        barrier = (flat.log()
                   + (Tensor(np.array(self.c_max)) - flat).log()
                   ).sum(axis=1) * (-self.barrier_r)
        total = fom + barrier  # (B,)
        total.sum().backward()
        values = total.numpy().astype(float).copy()
        grads = c.grad.reshape(batch, self.num_variables).copy()
        if not np.isfinite(values).all() or not np.isfinite(grads).all():
            raise RelaxationError(
                "non-finite batched potential evaluation",
                stage="relaxation",
                details={
                    "values_finite": bool(np.isfinite(values).all()),
                    "grads_finite": bool(np.isfinite(grads).all()),
                },
            )
        if infeasible.any():
            values[infeasible] = float("inf")
            push = np.where(c_arr <= eps, -1.0, np.where(
                c_arr >= self.c_max - eps, 1.0, 0.0))
            grads[infeasible] = push.reshape(
                batch, self.num_variables)[infeasible]
        return values, grads

    def value(self, c_flat: np.ndarray) -> float:
        return self.value_and_grad(c_flat)[0]

    def predicted_metrics(self, c_flat: np.ndarray) -> np.ndarray:
        """Normalized metric predictions at a guidance point (no grad)."""
        # Relaxation operates in float64 by contract; only serve
        # endpoints opt into float32, at the endpoint boundary.
        # repro-lint: disable-next-line=PRE001 -- float64 relaxation contract
        c = Tensor(np.asarray(c_flat, dtype=float).reshape(self.graph.num_aps, 3))
        with no_grad():
            return self.model(self.graph, c).numpy()
