"""The routing-guidance potential ``V(C)`` (Eq. 7-8).

``V(C) = w_FoM . f_theta(G_H, C) + g(C)`` where ``f_theta`` is the trained
3DGNN (predicting normalized metrics), ``w_FoM`` is the signed FoM weight
vector, and ``g`` is an interior-point log-barrier keeping every guidance
component inside the open feasible region ``(0, c_max)``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.model.gnn3d import Gnn3d
from repro.nn import Tensor
from repro.reliability.errors import RelaxationError
from repro.simulation.metrics import FoMWeights


class PotentialFunction:
    """Differentiable potential over flattened guidance vectors.

    Args:
        model: trained 3DGNN.
        graph: the design's heterogeneous graph (``G_H^val`` in Eq. 7).
        weights: figure-of-merit weights (equal by default, per the paper).
        c_max: upper bound of the feasible guidance region.
        barrier_r: the barrier strength ``r`` of Eq. 8 (small positive).
    """

    def __init__(
        self,
        model: Gnn3d,
        graph: HeteroGraph,
        weights: FoMWeights | None = None,
        c_max: float = 4.0,
        barrier_r: float = 0.01,
    ) -> None:
        if c_max <= 0:
            raise ValueError(f"c_max must be positive, got {c_max}")
        if barrier_r <= 0:
            raise ValueError(f"barrier_r must be positive, got {barrier_r}")
        self.model = model
        self.graph = graph
        self.weights = weights or FoMWeights()
        self.c_max = c_max
        self.barrier_r = barrier_r
        self._w_signed = self.weights.as_signed_vector()

    @property
    def num_variables(self) -> int:
        return self.graph.num_aps * 3

    def barrier(self, c: Tensor) -> Tensor:
        """Interior-point penalty ``g(C)`` of Eq. 8."""
        return (c.log() + (Tensor(np.array(self.c_max)) - c).log()).sum() * (
            -self.barrier_r
        )

    def value_and_grad(self, c_flat: np.ndarray) -> tuple[float, np.ndarray]:
        """Potential value and gradient for a flattened guidance vector.

        Infeasible inputs (outside the open region) return +inf with a
        gradient pushing back toward feasibility, so line searches recover.
        """
        c_arr = np.asarray(c_flat, dtype=float).reshape(self.graph.num_aps, 3)
        eps = 1e-9
        if (c_arr <= eps).any() or (c_arr >= self.c_max - eps).any():
            grad = np.where(c_arr <= eps, -1.0, np.where(
                c_arr >= self.c_max - eps, 1.0, 0.0))
            return float("inf"), grad.reshape(-1)

        c = Tensor(c_arr, requires_grad=True)
        pred = self.model(self.graph, c)
        fom = (pred * Tensor(self._w_signed)).sum()
        total = fom + self.barrier(c)
        total.backward()
        value = total.item()
        grad = c.grad.reshape(-1).copy()
        if not np.isfinite(value) or not np.isfinite(grad).all():
            # A NaN from the model would silently poison L-BFGS; surface
            # it as a typed error so the relaxer can drop the restart.
            raise RelaxationError(
                f"non-finite potential evaluation (value {value})",
                stage="relaxation",
                details={"value": value,
                         "grad_finite": bool(np.isfinite(grad).all())},
            )
        return value, grad

    def value(self, c_flat: np.ndarray) -> float:
        return self.value_and_grad(c_flat)[0]

    def predicted_metrics(self, c_flat: np.ndarray) -> np.ndarray:
        """Normalized metric predictions at a guidance point (no grad)."""
        c = Tensor(np.asarray(c_flat, dtype=float).reshape(self.graph.num_aps, 3))
        return self.model(self.graph, c).numpy()
