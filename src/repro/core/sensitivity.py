"""Guidance sensitivity analysis: which pins steer performance most.

The potential gradient ``dV/dC`` evaluated at a guidance point ranks pin
access points (and directions) by their influence on predicted post-layout
performance — a diagnostic the trained 3DGNN gives for free, useful for
understanding *why* the relaxation shapes guidance the way it does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.potential import PotentialFunction

_DIRECTIONS = ("x", "y", "z")


@dataclass(frozen=True)
class PinSensitivity:
    """Sensitivity of the potential to one access point's guidance.

    Attributes:
        key: (device, pin) identity.
        net: owning net name.
        gradient: length-3 dV/dC for this pin.
        magnitude: L2 norm of the gradient (ranking key).
    """

    key: tuple[str, str]
    net: str
    gradient: np.ndarray
    magnitude: float

    @property
    def dominant_direction(self) -> str:
        return _DIRECTIONS[int(np.argmax(np.abs(self.gradient)))]


def guidance_sensitivity(
    potential: PotentialFunction,
    guidance: np.ndarray | None = None,
) -> list[PinSensitivity]:
    """Rank access points by |dV/dC| at a guidance point.

    Args:
        potential: trained potential function.
        guidance: (num_aps, 3) evaluation point; neutral (all ones used at
            1.5, the feasible-region center-ish) when None.

    Returns:
        Sensitivities sorted most-influential first.
    """
    graph = potential.graph
    if guidance is None:
        guidance = np.full((graph.num_aps, 3), 1.5)
    guidance = np.asarray(guidance, dtype=float)
    if guidance.shape != (graph.num_aps, 3):
        raise ValueError(
            f"guidance shape {guidance.shape} != ({graph.num_aps}, 3)")

    _, grad = potential.value_and_grad(guidance.reshape(-1))
    grad = grad.reshape(graph.num_aps, 3)

    out = [
        PinSensitivity(
            key=key,
            net=net,
            gradient=grad[i].copy(),
            magnitude=float(np.linalg.norm(grad[i])),
        )
        for i, (key, net) in enumerate(zip(graph.ap_keys, graph.ap_nets))
    ]
    out.sort(key=lambda s: s.magnitude, reverse=True)
    return out


def net_sensitivity(sensitivities: list[PinSensitivity]) -> dict[str, float]:
    """Aggregate pin sensitivities per net (sum of magnitudes)."""
    totals: dict[str, float] = {}
    for s in sensitivities:
        totals[s.net] = totals.get(s.net, 0.0) + s.magnitude
    return dict(sorted(totals.items(), key=lambda kv: kv[1], reverse=True))


def format_sensitivity_report(
    sensitivities: list[PinSensitivity], top_k: int = 15
) -> str:
    """Human-readable ranking of the most influential pins."""
    lines = ["Guidance sensitivity (|dV/dC| per pin access point):",
             f"{'rank':>4} {'pin':<20} {'net':<10} {'|grad|':>10} {'dominant':>9}"]
    for rank, s in enumerate(sensitivities[:top_k], start=1):
        pin = f"{s.key[0]}.{s.key[1]}"
        lines.append(
            f"{rank:>4} {pin:<20} {s.net:<10} {s.magnitude:>10.4f} "
            f"{s.dominant_direction:>9}"
        )
    return "\n".join(lines)
