"""Database construction: sampled guidance -> routed -> simulated labels.

The paper collects training data by running the automatic router under many
different guidance settings and simulating each result ("learns from the
automatically generated routing patterns using their performance metrics").
This module reproduces that loop on our substrates.

Construction is fault-tolerant (see ``docs/RELIABILITY.md``): a sample
whose routing, extraction, or simulation fails is retried with perturbed
guidance, then skipped and backfilled by a freshly drawn sample; every
completed sample can be checkpointed to a JSONL file and reused on resume.
Only when fewer than the policy's ``min_valid_fraction`` of requested
samples survive does construction abort, with a typed
:class:`~repro.reliability.errors.DataQualityError`.

Construction parallelizes across ``workers`` processes (see
``docs/PERFORMANCE.md``): every sample's RNG inputs are derived from
deterministic per-sample streams and the parent applies the degradation
policy in submission order, so parallel output — database, construction
report, and checkpoint file alike — is bit-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extraction import extract
from repro.graph import build_hetero_graph
from repro.graph.hetero import HeteroGraph
from repro.model.training import TrainSample
from repro.netlist.circuit import Circuit
from repro.obs import NULL_CONTEXT, RunContext
from repro.perf.timing import StageTimer
from repro.placement.layout import Placement
from repro.reliability.checkpoint import (
    CheckpointWriter,
    dataset_fingerprint,
    load_checkpoint,
)
from repro.reliability.errors import (
    DataQualityError,
    ExtractionError,
    ReproError,
    RoutingError,
    SimulationError,
)
from repro.reliability.faults import active_plans, fault_scope
from repro.reliability.policy import (
    ConstructionReport,
    DegradationPolicy,
    FailureRecord,
    validate_sample,
)
from repro.reliability.retry import RetryPolicy, retry_call
from repro.router import IterativeRouter, RouterConfig, RoutingGrid
from repro.router.guidance import RoutingGuidance, random_guidance, uniform_guidance
from repro.router.result import RoutingResult
from repro.simulation import TestbenchConfig, simulate_performance
from repro.simulation.metrics import PerformanceMetrics


@dataclass(frozen=True)
class DatasetConfig:
    """Database construction knobs.

    Attributes:
        num_samples: number of guidance samples routed and simulated.
        c_max: guidance feasible-region upper bound.
        seed: sampling seed.
        include_uniform: prepend one neutral-guidance sample (the unguided
            router's operating point, anchoring the dataset).
        routing_pitch: grid pitch in micrometers.
    """

    num_samples: int = 60
    c_max: float = 4.0
    seed: int = 0
    include_uniform: bool = True
    routing_pitch: float = 0.5

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError(
                f"num_samples must be positive, got {self.num_samples}")
        if self.c_max <= 0:
            raise ValueError(f"c_max must be positive, got {self.c_max}")
        if self.routing_pitch <= 0:
            raise ValueError(
                f"routing_pitch must be positive, got {self.routing_pitch}")


@dataclass
class GuidanceSample:
    """One database record.

    Attributes:
        guidance: the guidance used for routing.
        result: the routing solution.
        metrics: simulated post-layout metrics.
    """

    guidance: RoutingGuidance
    result: RoutingResult
    metrics: PerformanceMetrics


@dataclass
class Database:
    """The constructed design database.

    Attributes:
        graph: the design's heterogeneous graph (shared by all samples).
        samples: raw records.
        report: what happened during construction (retries, skips,
            checkpoint reuse); ``None`` for databases built by hand.
    """

    graph: HeteroGraph
    samples: list[GuidanceSample] = field(default_factory=list)
    report: ConstructionReport | None = None

    def train_samples(self) -> list[TrainSample]:
        """Convert records to supervised 3DGNN samples in graph AP order."""
        out = []
        for record in self.samples:
            guidance_arr = record.guidance.as_array(self.graph.ap_keys)
            out.append(TrainSample(
                guidance=guidance_arr,
                targets=record.metrics.to_normalized(),
            ))
        return out


def route_and_measure(
    circuit: Circuit,
    placement: Placement,
    tech,
    guidance: RoutingGuidance,
    router_config: RouterConfig | None = None,
    testbench_config: TestbenchConfig | None = None,
    routing_pitch: float = 0.5,
    sample_index: int | None = None,
    timer: StageTimer | None = None,
    obs: RunContext | None = None,
) -> GuidanceSample:
    """Route one guidance setting and simulate the result.

    A fresh grid is built per call because routing mutates occupancy.
    Failures surface as typed :class:`~repro.reliability.errors.ReproError`
    subclasses with the stage and sample index attached.  When ``timer``
    is given, the route/extract/simulate stages report their wall time
    into it; an enabled ``obs`` context additionally emits one span per
    stage (the same clock read feeds both).
    """
    timer = timer if timer is not None else StageTimer()
    obs = obs if obs is not None else NULL_CONTEXT
    grid = RoutingGrid(placement, tech, pitch=routing_pitch)
    router = IterativeRouter(grid, guidance=guidance, config=router_config,
                             obs=obs)
    try:
        with obs.span("route", timer=timer):
            result = router.route_all()
    except ReproError as exc:
        raise exc.with_context(stage="routing", sample_index=sample_index)
    except Exception as exc:
        raise RoutingError(str(exc), stage="routing",
                           sample_index=sample_index) from exc
    try:
        with obs.span("extract", timer=timer):
            parasitics = extract(result, grid, tech)
    except ReproError as exc:
        raise exc.with_context(stage="extraction", sample_index=sample_index)
    except Exception as exc:
        raise ExtractionError(str(exc), stage="extraction",
                              sample_index=sample_index) from exc
    try:
        with obs.span("simulate", timer=timer):
            metrics = simulate_performance(circuit, parasitics,
                                           testbench_config)
    except ReproError as exc:
        raise exc.with_context(stage="simulation", sample_index=sample_index)
    except Exception as exc:
        raise SimulationError(str(exc), stage="simulation",
                              sample_index=sample_index) from exc
    return GuidanceSample(guidance=guidance, result=result, metrics=metrics)


def _perturb_guidance(
    guidance: RoutingGuidance, seed: list[int], noise: float
) -> RoutingGuidance:
    """Retry input: the same guidance with Gaussian noise, kept feasible."""
    rng = np.random.default_rng(seed)
    out = guidance.copy()
    for key in out.vectors:
        out.vectors[key] = out.vectors[key] + rng.normal(0.0, noise, size=3)
    out.clip_to_feasible()
    return out


@dataclass
class AttemptOutcome:
    """Result of one sample attempt (with retries), process-portable.

    Workers return this to the parent, which applies the degradation
    policy; the serial path produces the identical structure so both
    modes share one bookkeeping code path.

    Attributes:
        index: the attempted sample index.
        sample: the completed sample, or ``None`` when abandoned.
        retries: retry attempts consumed (0 when the first try succeeded).
        failure: the skip record when abandoned after retries.
        stage_timer: route/extract/simulate wall time of this attempt.
        obs_events: span records buffered by the attempt's recording
            context (empty when observability is disabled); the parent
            absorbs them in submission order.
        obs_counters: counter totals of the recording context, merged
            into the parent's registry alongside ``obs_events``.
    """

    index: int
    sample: GuidanceSample | None
    retries: int = 0
    failure: FailureRecord | None = None
    stage_timer: StageTimer = field(default_factory=StageTimer)
    obs_events: list = field(default_factory=list)
    obs_counters: dict = field(default_factory=dict)


def attempt_sample(
    circuit: Circuit,
    placement: Placement,
    tech,
    guidance: RoutingGuidance,
    index: int,
    cfg: DatasetConfig,
    policy: DegradationPolicy,
    router_config: RouterConfig | None,
    testbench_config: TestbenchConfig | None,
    obs: RunContext | None = None,
) -> AttemptOutcome:
    """One sample with retries, as a pure function of its arguments.

    All RNG use is derived from ``(policy.retry_seed, index, attempt)``,
    and fault-injection calls are attributed to unit ``index`` via
    :func:`~repro.reliability.faults.fault_scope` — so the outcome is
    identical whether this runs in the parent process or a pool worker.

    ``obs`` should be a *recording* context (serial and parallel callers
    alike hand one in, so traces are identical for any worker count); its
    buffered spans and counters ride back on the outcome.  The emitted
    ``dataset.sample`` span carries outcome ``ok`` / ``retried`` /
    ``skipped`` plus the consumed retry count, and every retry increments
    ``retry_total{stage=<failing stage>}``.
    """
    outcome = AttemptOutcome(index=index, sample=None)
    ctx = obs if obs is not None else NULL_CONTEXT

    def build(guidance: RoutingGuidance = guidance) -> GuidanceSample:
        sample = route_and_measure(
            circuit, placement, tech, guidance,
            router_config=router_config,
            testbench_config=testbench_config,
            routing_pitch=cfg.routing_pitch,
            sample_index=index,
            timer=outcome.stage_timer,
            obs=ctx,
        )
        reason = validate_sample(sample, require_routed=policy.require_routed)
        if reason is not None:
            raise DataQualityError(reason, stage="quality", sample_index=index)
        return sample

    def reseed(attempt: int, _kwargs: dict) -> dict:
        outcome.retries += 1
        return {"guidance": _perturb_guidance(
            guidance, [policy.retry_seed, index, attempt], policy.retry_noise)}

    def on_retry(_attempt: int, exc: BaseException) -> None:
        stage = getattr(exc, "stage", None) or "unknown"
        ctx.counter("retry_total", stage=stage).inc()

    with ctx.span("dataset.sample", index=index) as span:
        try:
            with fault_scope(index):
                outcome.sample = retry_call(
                    build,
                    policy=RetryPolicy(max_attempts=policy.max_retries + 1),
                    reseed=reseed,
                    on_retry=on_retry,
                )
            span.set(outcome="retried" if outcome.retries else "ok",
                     retries=outcome.retries)
        except ReproError as exc:
            outcome.failure = FailureRecord(
                sample_index=index,
                stage=exc.stage or "unknown",
                error=exc.message,
                attempts=policy.max_retries + 1,
            )
            span.set(outcome="skipped", retries=outcome.retries,
                     stage=outcome.failure.stage)
    if obs is not None and obs.enabled:
        outcome.obs_events = obs.drain_events()
        outcome.obs_counters = obs.counter_values()
    return outcome


def generate_dataset(
    circuit: Circuit,
    placement: Placement,
    tech,
    config: DatasetConfig | None = None,
    router_config: RouterConfig | None = None,
    testbench_config: TestbenchConfig | None = None,
    policy: DegradationPolicy | None = None,
    checkpoint_path=None,
    resume: bool = False,
    workers: int = 1,
    timer: StageTimer | None = None,
    obs: RunContext | None = None,
) -> Database:
    """Build the training database for one (circuit, placement) design.

    Args:
        policy: degradation policy for per-sample failures (default:
            one retry, skip-and-resample, 50% survivor floor).
        checkpoint_path: when given, completed samples are appended to
            this JSONL file as they finish.
        resume: reuse samples already present in ``checkpoint_path``
            (validated against the run fingerprint) instead of
            recomputing them.
        workers: worker processes for sample construction; 1 runs
            in-process.  Output is bit-identical across worker counts
            (deterministic per-sample RNG streams; the parent applies
            the degradation policy in submission order).
        timer: optional stage timer absorbing per-sample
            route/extract/simulate wall time.
        obs: observability context; when enabled, every sample attempt
            emits a ``dataset.sample`` span tree (worker spans are
            buffered per attempt and absorbed in submission order, so
            the trace and all counters are identical for any worker
            count) and the construction report's totals are emitted as
            counters.

    Raises:
        DataQualityError: fewer than the policy's floor of valid samples
            survived construction.
        CheckpointError: ``resume`` was requested against a checkpoint
            from a different design or configuration.
    """
    cfg = config or DatasetConfig()
    pol = policy or DegradationPolicy()
    obs = obs if obs is not None else NULL_CONTEXT
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    rng = np.random.default_rng(cfg.seed)

    reference_grid = RoutingGrid(placement, tech, pitch=cfg.routing_pitch)
    graph = build_hetero_graph(reference_grid)
    keys = graph.ap_keys

    guidances: list[RoutingGuidance] = []
    if cfg.include_uniform:
        guidances.append(uniform_guidance(keys, c_max=cfg.c_max))
    while len(guidances) < cfg.num_samples:
        guidances.append(random_guidance(keys, rng, c_max=cfg.c_max))

    report = ConstructionReport(requested=cfg.num_samples)
    database = Database(graph=graph, report=report)

    completed: dict[int, GuidanceSample] = {}
    writer: CheckpointWriter | None = None
    if checkpoint_path is not None:
        fingerprint = dataset_fingerprint(circuit, cfg, reference_grid)
        if resume:
            completed = load_checkpoint(checkpoint_path, fingerprint,
                                        reference_grid)
        writer = CheckpointWriter(checkpoint_path, fingerprint, resume=resume)

    # Replacement draws come from their own stream so the base sample
    # sequence is identical whether or not failures occur.
    resample_rng = np.random.default_rng([cfg.seed, 0x5A3E])
    resamples_left = pol.resamples_for(cfg.num_samples)
    next_index = cfg.num_samples

    pool = None
    futures: dict[int, object] = {}  # pending position -> Future
    if workers > 1:
        from repro.perf.parallel import ParallelConfig, SamplePool

        pool = SamplePool(
            context={
                "circuit": circuit,
                "placement": placement,
                "tech": tech,
                "config": cfg,
                "policy": pol,
                "router_config": router_config,
                "testbench_config": testbench_config,
                "fault_plans": active_plans(),
                "obs_enabled": obs.enabled,
            },
            config=ParallelConfig(workers=workers),
        )

    def schedule(position: int, index: int, guidance: RoutingGuidance) -> None:
        if pool is not None and index not in completed:
            futures[position] = pool.submit(index, guidance)

    try:
        pending = list(enumerate(guidances[: cfg.num_samples]))
        for position, (index, guidance) in enumerate(pending):
            schedule(position, index, guidance)
        # Results are consumed in submission order regardless of worker
        # completion order, so samples, checkpoint lines, skip records,
        # and resample draws are sequenced exactly as a serial run.
        cursor = 0
        while cursor < len(pending):
            index, guidance = pending[cursor]
            position = cursor
            cursor += 1
            reused = completed.get(index)
            if reused is not None:
                database.samples.append(reused)
                report.reused += 1
                report.valid += 1
                obs.emit_span("dataset.sample", 0.0, outcome="reused",
                              index=index)
                continue
            if pool is not None:
                outcome = futures.pop(position).result()
            else:
                outcome = attempt_sample(
                    circuit, placement, tech, guidance, index, cfg, pol,
                    router_config, testbench_config,
                    obs=RunContext.recording() if obs.enabled else None,
                )
            obs.absorb(outcome.obs_events, outcome.obs_counters)
            report.retried += outcome.retries
            if timer is not None:
                timer.absorb(outcome.stage_timer)
            if outcome.sample is not None:
                database.samples.append(outcome.sample)
                report.valid += 1
                if writer is not None:
                    writer.append_sample(index, outcome.sample)
            else:
                report.skipped.append(outcome.failure)
                if resamples_left > 0:
                    resamples_left -= 1
                    report.resampled += 1
                    pending.append((next_index,
                                    random_guidance(keys, resample_rng,
                                                    c_max=cfg.c_max)))
                    next_index += 1
                    schedule(len(pending) - 1, *pending[-1])
    finally:
        if pool is not None:
            pool.close()
        if writer is not None:
            writer.close()

    report.emit_metrics(obs)
    floor = pol.min_valid_samples(cfg.num_samples)
    if report.valid < floor:
        raise DataQualityError(
            f"database construction kept {report.valid} of "
            f"{cfg.num_samples} requested samples, below the floor of "
            f"{floor}",
            stage="database",
            details={
                "valid": report.valid,
                "floor": floor,
                "requested": cfg.num_samples,
                "failures_by_stage": report.failures_by_stage(),
            },
        )
    return database
