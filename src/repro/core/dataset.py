"""Database construction: sampled guidance -> routed -> simulated labels.

The paper collects training data by running the automatic router under many
different guidance settings and simulating each result ("learns from the
automatically generated routing patterns using their performance metrics").
This module reproduces that loop on our substrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extraction import extract
from repro.graph import build_hetero_graph
from repro.graph.hetero import HeteroGraph
from repro.model.training import TrainSample
from repro.netlist.circuit import Circuit
from repro.placement.layout import Placement
from repro.router import IterativeRouter, RouterConfig, RoutingGrid
from repro.router.guidance import RoutingGuidance, random_guidance, uniform_guidance
from repro.router.result import RoutingResult
from repro.simulation import TestbenchConfig, simulate_performance
from repro.simulation.metrics import PerformanceMetrics


@dataclass(frozen=True)
class DatasetConfig:
    """Database construction knobs.

    Attributes:
        num_samples: number of guidance samples routed and simulated.
        c_max: guidance feasible-region upper bound.
        seed: sampling seed.
        include_uniform: prepend one neutral-guidance sample (the unguided
            router's operating point, anchoring the dataset).
        routing_pitch: grid pitch in micrometers.
    """

    num_samples: int = 60
    c_max: float = 4.0
    seed: int = 0
    include_uniform: bool = True
    routing_pitch: float = 0.5


@dataclass
class GuidanceSample:
    """One database record.

    Attributes:
        guidance: the guidance used for routing.
        result: the routing solution.
        metrics: simulated post-layout metrics.
    """

    guidance: RoutingGuidance
    result: RoutingResult
    metrics: PerformanceMetrics


@dataclass
class Database:
    """The constructed design database.

    Attributes:
        graph: the design's heterogeneous graph (shared by all samples).
        samples: raw records.
    """

    graph: HeteroGraph
    samples: list[GuidanceSample] = field(default_factory=list)

    def train_samples(self) -> list[TrainSample]:
        """Convert records to supervised 3DGNN samples in graph AP order."""
        out = []
        for record in self.samples:
            guidance_arr = record.guidance.as_array(self.graph.ap_keys)
            out.append(TrainSample(
                guidance=guidance_arr,
                targets=record.metrics.to_normalized(),
            ))
        return out


def route_and_measure(
    circuit: Circuit,
    placement: Placement,
    tech,
    guidance: RoutingGuidance,
    router_config: RouterConfig | None = None,
    testbench_config: TestbenchConfig | None = None,
    routing_pitch: float = 0.5,
) -> GuidanceSample:
    """Route one guidance setting and simulate the result.

    A fresh grid is built per call because routing mutates occupancy.
    """
    grid = RoutingGrid(placement, tech, pitch=routing_pitch)
    router = IterativeRouter(grid, guidance=guidance, config=router_config)
    result = router.route_all()
    parasitics = extract(result, grid, tech)
    metrics = simulate_performance(circuit, parasitics, testbench_config)
    return GuidanceSample(guidance=guidance, result=result, metrics=metrics)


def generate_dataset(
    circuit: Circuit,
    placement: Placement,
    tech,
    config: DatasetConfig | None = None,
    router_config: RouterConfig | None = None,
    testbench_config: TestbenchConfig | None = None,
) -> Database:
    """Build the training database for one (circuit, placement) design."""
    cfg = config or DatasetConfig()
    rng = np.random.default_rng(cfg.seed)

    reference_grid = RoutingGrid(placement, tech, pitch=cfg.routing_pitch)
    graph = build_hetero_graph(reference_grid)
    keys = graph.ap_keys

    database = Database(graph=graph)
    guidances: list[RoutingGuidance] = []
    if cfg.include_uniform:
        guidances.append(uniform_guidance(keys, c_max=cfg.c_max))
    while len(guidances) < cfg.num_samples:
        guidances.append(random_guidance(keys, rng, c_max=cfg.c_max))

    for guidance in guidances[: cfg.num_samples]:
        database.samples.append(route_and_measure(
            circuit, placement, tech, guidance,
            router_config=router_config,
            testbench_config=testbench_config,
            routing_pitch=cfg.routing_pitch,
        ))
    return database
