"""Pool-assisted potential relaxation (Section 4.3, Figure 2(b)).

L-BFGS minimizes ``V(C)`` from many initializations.  A pool of the
``pool_size`` lowest-potential solutions is maintained; once the pool is
full, a fraction ``p_relax`` of subsequent restarts re-initialize from a
pool member with Gaussian noise added — the paper's noisy-restart escape
from local optima.  The top ``n_derive`` solutions are returned.

Restarts degrade independently: a restart that diverges to a non-finite
potential or guidance (or raises a
:class:`~repro.reliability.errors.RelaxationError` from the potential
evaluation) is dropped and recorded in the trace instead of aborting the
run.  Only when *no* restart survives does :meth:`PotentialRelaxer.run`
raise, with the trace attached for diagnosis.

With ``RelaxationConfig.batched`` the restarts run in two *waves*
(pool-building, then pool-seeded), each as one joint L-BFGS-B over the
concatenated restart variables: the objective is the sum of the per-restart
potentials, whose gradient blocks are independent, so every joint function
evaluation is a single batched GNN forward-backward over all active
restarts instead of one forward per restart (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import time

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize

from repro.core.potential import PotentialFunction
from repro.obs import NULL_CONTEXT, RunContext
from repro.reliability.errors import RelaxationError
from repro.reliability.faults import poison


@dataclass(frozen=True)
class RelaxationConfig:
    """Relaxation knobs.

    Attributes:
        n_restarts: total L-BFGS runs.
        pool_size: ``N_pool``, retained lowest-potential solutions.
        p_relax: fraction of restarts seeded from the pool once full.
        n_derive: ``N_derive``, solutions returned.
        noise_sigma: std of the noise added to pool-seeded restarts.
        maxiter: L-BFGS iteration cap per restart.
        init_low: lower bound of the uniform initial distribution.
        init_high: upper bound of the uniform initial distribution.
        seed_points: how many restarts are initialized from caller-provided
            guidance points (Figure 2(b): restarts sample from the routing
            guidance distributions of the database, not only from a uniform
            prior).
        seed: RNG seed.
        batched: run restarts in two joint waves sharing one batched GNN
            forward per function evaluation, instead of one L-BFGS run per
            restart.  Several times fewer forwards for the same number of
            restarts; solutions are valid minima of the same potential but
            not bit-identical to serial restarts (the joint optimizer
            couples line searches).
    """

    n_restarts: int = 12
    pool_size: int = 6
    p_relax: float = 0.5
    n_derive: int = 3
    noise_sigma: float = 0.3
    maxiter: int = 40
    init_low: float = 0.5
    init_high: float = 2.0
    seed_points: int = 2
    seed: int = 0
    batched: bool = False

    def __post_init__(self) -> None:
        if self.n_derive > self.pool_size:
            raise ValueError(
                f"n_derive {self.n_derive} exceeds pool_size {self.pool_size}"
            )
        if not 0.0 <= self.p_relax <= 1.0:
            raise ValueError(f"p_relax must be in [0, 1], got {self.p_relax}")
        if self.noise_sigma < 0:
            raise ValueError(
                f"noise_sigma must be >= 0, got {self.noise_sigma}")
        if self.maxiter <= 0:
            raise ValueError(f"maxiter must be positive, got {self.maxiter}")
        if self.seed_points > self.n_restarts:
            raise ValueError(
                f"seed_points {self.seed_points} exceeds n_restarts "
                f"{self.n_restarts}"
            )


@dataclass
class RelaxedGuidance:
    """One relaxation outcome.

    Attributes:
        guidance: (num_aps, 3) optimized guidance array.
        potential: final potential value.
        from_pool: whether the restart was seeded from the pool.
    """

    guidance: np.ndarray
    potential: float
    from_pool: bool = False


@dataclass
class RelaxationTrace:
    """Diagnostics of one relaxation run (reset at each :meth:`run`).

    Attributes:
        restarts: restarts that completed and entered pool selection.
        pool_seeded: restarts initialized from a pool member.
        diverged: restarts dropped for non-finite potential/guidance.
        failures: per-dropped-restart descriptions, e.g.
            ``"restart 3: non-finite potential nan"``.
        best_per_restart: best pool potential after each kept restart —
            non-increasing by construction (the pool only improves).
        restart_seconds: duration per attempted restart, in restart
            order, measured on the monotonic ``time.perf_counter``
            clock (batched mode amortizes each wave's time evenly over
            its restarts).  Durations are load-sensitive; tests must
            assert monotonicity/shape, never absolute values.
        restart_evals: potential evaluations per attempted restart — in
            batched mode, the number of joint evaluations of the
            restart's wave (each one touches the restart exactly once).
        gnn_forwards: GNN forward-backward passes the whole run executed.
    """

    restarts: int = 0
    pool_seeded: int = 0
    diverged: int = 0
    failures: list[str] = field(default_factory=list)
    best_per_restart: list[float] = field(default_factory=list)
    restart_seconds: list[float] = field(default_factory=list)
    restart_evals: list[int] = field(default_factory=list)
    gnn_forwards: int = 0


class PotentialRelaxer:
    """Runs pool-assisted relaxation over a :class:`PotentialFunction`.

    With an enabled ``obs`` context, every attempted restart emits a
    ``relax.restart`` span (outcome ``ok`` / ``diverged``, with its eval
    count and pool-seeding flag), reusing the trace's own perf_counter
    measurements; the run's totals feed the ``gnn_forwards`` and
    ``lbfgs_evals`` counters.
    """

    def __init__(self, config: RelaxationConfig | None = None,
                 obs: RunContext | None = None) -> None:
        self.config = config or RelaxationConfig()
        self.obs = obs if obs is not None else NULL_CONTEXT
        self.trace = RelaxationTrace()

    def run(
        self,
        potential: PotentialFunction,
        seed_guidance: list[np.ndarray] | None = None,
    ) -> list[RelaxedGuidance]:
        """Derive the top-``n_derive`` guidance solutions.

        Args:
            potential: the trained potential function.
            seed_guidance: optional (num_aps, 3) arrays to initialize the
                first ``seed_points`` restarts from (the database's
                best-performing guidance points, per Figure 2(b)).

        Raises:
            RelaxationError: every restart diverged; the trace rides in
                ``details["trace"]``.
        """
        cfg = self.config
        # Fresh diagnostics per run; a reused relaxer must not accumulate.
        self.trace = RelaxationTrace()
        rng = np.random.default_rng(cfg.seed)
        seeds = list(seed_guidance or [])[: cfg.seed_points]
        start_forwards = potential.stats.forwards
        start_evals = potential.stats.evals + potential.stats.batched_evals

        if cfg.batched:
            pool = self._run_batched(potential, rng, seeds)
        else:
            pool = self._run_serial(potential, rng, seeds)
        self.trace.gnn_forwards = potential.stats.forwards - start_forwards
        self.obs.counter("gnn_forwards").inc(self.trace.gnn_forwards)
        self.obs.counter("lbfgs_evals").inc(
            potential.stats.evals + potential.stats.batched_evals
            - start_evals)

        if not pool:
            raise RelaxationError(
                f"all {cfg.n_restarts} relaxation restarts diverged",
                stage="relaxation",
                details={
                    "trace": {
                        "diverged": self.trace.diverged,
                        "failures": list(self.trace.failures),
                    }
                },
            )
        return pool[: cfg.n_derive]

    @staticmethod
    def _seed_point(seed_guidance: np.ndarray, n_vars: int) -> np.ndarray:
        x0 = np.asarray(seed_guidance, dtype=float).reshape(-1)
        if x0.shape != (n_vars,):
            raise ValueError(
                f"seed guidance has {x0.size} values, expected {n_vars}"
            )
        return x0

    def _keep(self, pool: list[RelaxedGuidance], restart: int,
              x: np.ndarray, raw_value: float, from_pool: bool,
              potential: PotentialFunction) -> bool:
        """Pool-selection bookkeeping shared by serial and batched runs.

        Returns whether the restart survived (``False`` = diverged).
        """
        cfg = self.config
        value = poison("relaxation", raw_value)
        if not np.isfinite(value):
            self.trace.diverged += 1
            self.trace.failures.append(
                f"restart {restart}: non-finite potential {value}")
            return False
        if not np.isfinite(x).all():
            self.trace.diverged += 1
            self.trace.failures.append(
                f"restart {restart}: non-finite guidance")
            return False
        margin = 1e-3
        solution = RelaxedGuidance(
            guidance=np.clip(x, margin, potential.c_max - margin)
            .reshape(potential.graph.num_aps, 3),
            potential=value,
            from_pool=from_pool,
        )
        pool.append(solution)
        pool.sort(key=lambda s: s.potential)
        del pool[cfg.pool_size:]
        self.trace.restarts += 1
        self.trace.best_per_restart.append(pool[0].potential)
        return True

    def _run_serial(
        self,
        potential: PotentialFunction,
        rng: np.random.Generator,
        seeds: list[np.ndarray],
    ) -> list[RelaxedGuidance]:
        """One L-BFGS run per restart (the paper's reference loop)."""
        cfg = self.config
        n_vars = potential.num_variables
        margin = 1e-3
        bounds = [(margin, potential.c_max - margin)] * n_vars

        pool: list[RelaxedGuidance] = []
        for restart in range(cfg.n_restarts):
            from_pool = len(pool) >= cfg.pool_size and rng.random() < cfg.p_relax
            if restart < len(seeds):
                x0 = self._seed_point(seeds[restart], n_vars)
                from_pool = False
            elif from_pool:
                seed_sol = pool[rng.integers(len(pool))]
                x0 = seed_sol.guidance.reshape(-1) + rng.normal(
                    0.0, cfg.noise_sigma, size=n_vars
                )
                self.trace.pool_seeded += 1
            else:
                x0 = rng.uniform(cfg.init_low, cfg.init_high, size=n_vars)
            x0 = np.clip(x0, margin * 2, potential.c_max - margin * 2)

            evals_before = potential.stats.evals
            started = time.perf_counter()
            try:
                result = minimize(
                    potential.value_and_grad,
                    x0,
                    jac=True,
                    method="L-BFGS-B",
                    bounds=bounds,
                    options={"maxiter": cfg.maxiter},
                )
            except RelaxationError as exc:
                elapsed = time.perf_counter() - started
                evals = potential.stats.evals - evals_before
                self.trace.restart_seconds.append(elapsed)
                self.trace.restart_evals.append(evals)
                self.trace.diverged += 1
                self.trace.failures.append(f"restart {restart}: {exc}")
                self.obs.emit_span("relax.restart", elapsed,
                                   outcome="diverged", restart=restart,
                                   evals=evals, from_pool=from_pool)
                continue
            elapsed = time.perf_counter() - started
            evals = potential.stats.evals - evals_before
            self.trace.restart_seconds.append(elapsed)
            self.trace.restart_evals.append(evals)
            kept = self._keep(pool, restart, result.x, float(result.fun),
                              from_pool, potential)
            self.obs.emit_span("relax.restart", elapsed,
                               outcome="ok" if kept else "diverged",
                               restart=restart, evals=evals,
                               from_pool=from_pool)
        return pool

    def _run_batched(
        self,
        potential: PotentialFunction,
        rng: np.random.Generator,
        seeds: list[np.ndarray],
    ) -> list[RelaxedGuidance]:
        """Restarts in two joint waves, one batched forward per evaluation.

        Wave 1 builds the pool (seed points, then uniform draws); wave 2
        re-initializes from the pool with probability ``p_relax``, like
        the serial loop once the pool is full.  Each wave minimizes the
        *sum* of its restarts' potentials over the concatenated variables:
        the gradient blocks are independent, so the joint L-BFGS walks
        every restart downhill while paying one batched GNN
        forward-backward per function evaluation.
        """
        cfg = self.config
        n_vars = potential.num_variables

        pool: list[RelaxedGuidance] = []
        wave1 = min(cfg.n_restarts, max(cfg.pool_size, len(seeds), 1))
        inits: list[tuple[np.ndarray, bool]] = []
        for restart in range(wave1):
            if restart < len(seeds):
                x0 = self._seed_point(seeds[restart], n_vars)
            else:
                x0 = rng.uniform(cfg.init_low, cfg.init_high, size=n_vars)
            inits.append((x0, False))
        self._wave(potential, pool, inits, restart_offset=0)

        inits = []
        for _ in range(wave1, cfg.n_restarts):
            from_pool = (len(pool) >= cfg.pool_size
                         and rng.random() < cfg.p_relax)
            if from_pool:
                seed_sol = pool[rng.integers(len(pool))]
                x0 = seed_sol.guidance.reshape(-1) + rng.normal(
                    0.0, cfg.noise_sigma, size=n_vars
                )
                self.trace.pool_seeded += 1
            else:
                x0 = rng.uniform(cfg.init_low, cfg.init_high, size=n_vars)
            inits.append((x0, from_pool))
        if inits:
            self._wave(potential, pool, inits, restart_offset=wave1)
        return pool

    def _wave(
        self,
        potential: PotentialFunction,
        pool: list[RelaxedGuidance],
        inits: list[tuple[np.ndarray, bool]],
        restart_offset: int,
    ) -> None:
        """Jointly minimize one wave of restarts and fold them into the pool."""
        cfg = self.config
        n_vars = potential.num_variables
        wave = len(inits)
        margin = 1e-3
        bounds = [(margin, potential.c_max - margin)] * (n_vars * wave)
        x0 = np.concatenate([
            np.clip(x, margin * 2, potential.c_max - margin * 2)
            for x, _ in inits
        ])

        def objective(x_joint: np.ndarray) -> tuple[float, np.ndarray]:
            values, grads = potential.value_and_grad_batch(
                x_joint.reshape(wave, n_vars))
            return float(values.sum()), grads.reshape(-1)

        evals_before = potential.stats.batched_evals
        started = time.perf_counter()
        try:
            result = minimize(
                objective,
                x0,
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": cfg.maxiter},
            )
            # One more batched eval for the final per-restart values (the
            # joint ``result.fun`` only exposes their sum).
            values, _ = potential.value_and_grad_batch(
                result.x.reshape(wave, n_vars))
        except RelaxationError as exc:
            elapsed = time.perf_counter() - started
            evals = potential.stats.batched_evals - evals_before
            for i in range(wave):
                self.trace.restart_seconds.append(elapsed / wave)
                self.trace.restart_evals.append(evals)
                self.trace.diverged += 1
                self.trace.failures.append(
                    f"restart {restart_offset + i}: {exc}")
                self.obs.emit_span("relax.restart", elapsed / wave,
                                   outcome="diverged",
                                   restart=restart_offset + i, evals=evals,
                                   from_pool=inits[i][1])
            return
        elapsed = time.perf_counter() - started
        evals = potential.stats.batched_evals - evals_before
        xs = result.x.reshape(wave, n_vars)
        for i in range(wave):
            self.trace.restart_seconds.append(elapsed / wave)
            self.trace.restart_evals.append(evals)
            kept = self._keep(pool, restart_offset + i, xs[i],
                              float(values[i]), inits[i][1], potential)
            self.obs.emit_span("relax.restart", elapsed / wave,
                               outcome="ok" if kept else "diverged",
                               restart=restart_offset + i, evals=evals,
                               from_pool=inits[i][1])
