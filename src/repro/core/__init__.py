"""AnalogFold core: potential modeling, relaxation, dataset, pipeline."""

from repro.core.dataset import (
    Database,
    DatasetConfig,
    GuidanceSample,
    generate_dataset,
)
from repro.core.pipeline import AnalogFold, AnalogFoldConfig, AnalogFoldResult
from repro.core.potential import PotentialFunction
from repro.core.relaxation import PotentialRelaxer, RelaxationConfig, RelaxedGuidance
from repro.core.sensitivity import (
    PinSensitivity,
    guidance_sensitivity,
    net_sensitivity,
)

__all__ = [
    "PotentialFunction",
    "PotentialRelaxer",
    "RelaxationConfig",
    "RelaxedGuidance",
    "PinSensitivity",
    "guidance_sensitivity",
    "net_sensitivity",
    "Database",
    "DatasetConfig",
    "GuidanceSample",
    "generate_dataset",
    "AnalogFold",
    "AnalogFoldConfig",
    "AnalogFoldResult",
]
