"""The heterogeneous graph data structure.

Vertex sets: pin access points (``V_AP``) and modules (``V_M``).  Edge
sets: point-to-point (``E_PP``, physical interplay including resource
competition between nearby access points), module-to-module (``E_MM``,
logical netlist connectivity) and point-to-module (``E_MP``, bridging the
physical and logical views) — Section 4.1 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class EdgeType(enum.Enum):
    """Heterogeneous edge kinds."""

    PP = "pp"
    MP = "mp"
    MM = "mm"


@dataclass
class HeteroGraph:
    """An immutable heterogeneous routing graph for one (circuit, placement).

    Node indexing convention: access points occupy indices
    ``0..num_aps-1``, modules occupy ``num_aps..num_aps+num_modules-1`` in
    the unified node list used by message passing.

    Attributes:
        ap_keys: (device, pin) identity per access point, fixing the order
            guidance vectors are stacked in.
        ap_nets: owning net name per access point.
        module_names: device name per module node.
        ap_positions: (num_aps, 3) grid-space positions (x, y, layer).
        module_positions: (num_modules, 3) positions (center x, y, 0).
        ap_features: (num_aps, F_ap) static features.
        module_features: (num_modules, F_m) static features.
        edges: per edge type, an (E, 2) int array of *undirected* pairs in
            unified node indexing.
    """

    ap_keys: list[tuple[str, str]]
    ap_nets: list[str]
    module_names: list[str]
    ap_positions: np.ndarray
    module_positions: np.ndarray
    ap_features: np.ndarray
    module_features: np.ndarray
    edges: dict[EdgeType, np.ndarray] = field(default_factory=dict)
    #: Memoized ``directed_edges`` output per edge type, keyed by the
    #: identity of the underlying pair array so replacing ``edges[et]``
    #: invalidates the entry.  Excluded from comparison/repr.
    _directed_cache: dict = field(
        default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.ap_keys) != len(self.ap_nets):
            raise ValueError("ap_keys and ap_nets must align")
        if self.ap_positions.shape != (self.num_aps, 3):
            raise ValueError(
                f"ap_positions shape {self.ap_positions.shape} != ({self.num_aps}, 3)"
            )
        if self.module_positions.shape != (self.num_modules, 3):
            raise ValueError("module_positions misshaped")
        for edge_type, pairs in self.edges.items():
            if pairs.size and pairs.max() >= self.num_nodes:
                raise ValueError(f"{edge_type} edge references unknown node")

    @property
    def num_aps(self) -> int:
        return len(self.ap_keys)

    @property
    def num_modules(self) -> int:
        return len(self.module_names)

    @property
    def num_nodes(self) -> int:
        return self.num_aps + self.num_modules

    def num_edges(self, edge_type: EdgeType | None = None) -> int:
        if edge_type is not None:
            return len(self.edges.get(edge_type, ()))
        return sum(len(e) for e in self.edges.values())

    @property
    def positions(self) -> np.ndarray:
        """Unified (num_nodes, 3) position array, APs first."""
        return np.vstack([self.ap_positions, self.module_positions])

    def directed_edges(self, edge_type: EdgeType) -> tuple[np.ndarray, np.ndarray]:
        """Source and destination index arrays with both directions expanded.

        Built once per graph and memoized: the expansion sits on the GNN's
        per-forward path (training evaluates it for every sample, potential
        relaxation for every L-BFGS function evaluation), but depends only
        on the static edge list.  Swapping ``edges[edge_type]`` for a new
        array invalidates the cached entry.
        """
        pairs = self.edges.get(edge_type)
        if pairs is None or len(pairs) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        entry = self._directed_cache.get(edge_type)
        if entry is not None and entry[0] == id(pairs) and entry[1] == len(pairs):
            return entry[2]
        src = np.concatenate([pairs[:, 0], pairs[:, 1]]).astype(np.int64)
        dst = np.concatenate([pairs[:, 1], pairs[:, 0]]).astype(np.int64)
        self._directed_cache[edge_type] = (id(pairs), len(pairs), (src, dst))
        return src, dst

    def ap_index_of_key(self, key: tuple[str, str]) -> int:
        """Index of an access point by its (device, pin) identity."""
        try:
            return self.ap_keys.index(key)
        except ValueError:
            raise KeyError(f"no access point for pin {key}") from None
