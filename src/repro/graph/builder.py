"""Construct the heterogeneous graph from a placement and its routing grid.

Edge construction (Section 4.1):

* ``E_PP``: access points of the same net are fully connected (they will be
  wired together), and access points of *different* nets within a proximity
  radius are connected — modeling routing-resource competition;
* ``E_MM``: modules sharing a net are connected (logical netlist view);
* ``E_MP``: every access point connects to its owning module, bridging the
  physical and logical views.
"""

from __future__ import annotations

import numpy as np

from repro.graph.features import ap_features, module_features
from repro.graph.hetero import EdgeType, HeteroGraph
from repro.router.grid import RoutingGrid

#: Chebyshev proximity radius (grid cells) for cross-net competition edges.
DEFAULT_PROXIMITY_RADIUS = 6.0
#: Cap on cross-net neighbours per access point to bound graph size.
MAX_PROXIMITY_NEIGHBOURS = 6


def build_hetero_graph(
    grid: RoutingGrid,
    proximity_radius: float = DEFAULT_PROXIMITY_RADIUS,
    max_neighbours: int = MAX_PROXIMITY_NEIGHBOURS,
) -> HeteroGraph:
    """Build ``G_H`` for the placement behind ``grid``."""
    placement = grid.placement
    circuit = placement.circuit
    extent = (float(grid.nx), float(grid.ny), float(grid.num_layers))

    # -- access point nodes -------------------------------------------------------
    ap_keys: list[tuple[str, str]] = []
    ap_nets: list[str] = []
    ap_pos_rows: list[tuple[float, float, float]] = []
    ap_feat_rows: list[np.ndarray] = []
    for net_name in sorted(grid.access_points):
        net = circuit.net(net_name)
        for ap in grid.access_points[net_name]:
            ap_keys.append(ap.key)
            ap_nets.append(net_name)
            ap_pos_rows.append(tuple(float(c) for c in ap.cell))
            ap_feat_rows.append(ap_features(ap, net, circuit, extent))
    num_aps = len(ap_keys)

    # -- module nodes ----------------------------------------------------------------
    module_names = sorted(placement.positions)
    module_index = {name: i for i, name in enumerate(module_names)}
    mod_pos_rows: list[tuple[float, float, float]] = []
    mod_feat_rows: list[np.ndarray] = []
    for name in module_names:
        x0, y0, x1, y1 = placement.device_box(name)
        cx = ((x0 + x1) / 2.0 - grid.origin[0]) / grid.pitch
        cy = ((y0 + y1) / 2.0 - grid.origin[1]) / grid.pitch
        mod_pos_rows.append((cx, cy, 0.0))
        mod_feat_rows.append(
            module_features(circuit.device(name), (cx, cy), extent)
        )

    # -- E_PP: same-net cliques ---------------------------------------------------------
    pp_pairs: set[tuple[int, int]] = set()
    net_to_aps: dict[str, list[int]] = {}
    for i, net_name in enumerate(ap_nets):
        net_to_aps.setdefault(net_name, []).append(i)
    for indices in net_to_aps.values():
        for a_i, i in enumerate(indices):
            for j in indices[a_i + 1:]:
                pp_pairs.add((i, j))

    # -- E_PP: cross-net proximity (resource competition) ----------------------------------
    positions = np.array(ap_pos_rows)
    for i in range(num_aps):
        deltas = np.abs(positions[:, :2] - positions[i, :2])
        cheb = deltas.max(axis=1)
        candidates = [
            (cheb[j], j)
            for j in range(num_aps)
            if j != i and ap_nets[j] != ap_nets[i] and cheb[j] <= proximity_radius
        ]
        candidates.sort()
        for _, j in candidates[:max_neighbours]:
            pp_pairs.add((min(i, j), max(i, j)))

    # -- E_MM: modules sharing a net ----------------------------------------------------------
    mm_pairs: set[tuple[int, int]] = set()
    for net in circuit.nets.values():
        devices = [module_index[d] for d in net.devices() if d in module_index]
        for a_i, i in enumerate(devices):
            for j in devices[a_i + 1:]:
                if i != j:
                    mm_pairs.add((min(i, j) + num_aps, max(i, j) + num_aps))

    # -- E_MP: access point to owning module ------------------------------------------------------
    mp_pairs: set[tuple[int, int]] = set()
    for i, (device, _pin) in enumerate(ap_keys):
        if device in module_index:
            mp_pairs.add((i, module_index[device] + num_aps))

    def to_array(pairs: set[tuple[int, int]]) -> np.ndarray:
        if not pairs:
            return np.zeros((0, 2), dtype=np.int64)
        return np.array(sorted(pairs), dtype=np.int64)

    return HeteroGraph(
        ap_keys=ap_keys,
        ap_nets=ap_nets,
        module_names=module_names,
        ap_positions=positions if num_aps else np.zeros((0, 3)),
        module_positions=np.array(mod_pos_rows) if module_names else np.zeros((0, 3)),
        ap_features=np.vstack(ap_feat_rows) if ap_feat_rows else np.zeros((0, 1)),
        module_features=(
            np.vstack(mod_feat_rows) if mod_feat_rows else np.zeros((0, 1))
        ),
        edges={
            EdgeType.PP: to_array(pp_pairs),
            EdgeType.MM: to_array(mm_pairs),
            EdgeType.MP: to_array(mp_pairs),
        },
    )
