"""Heterogeneous routing graph G_H = <V_AP, V_M, E_PP, E_MP, E_MM> (Sec. 4.1)."""

from repro.graph.builder import build_hetero_graph
from repro.graph.features import ap_feature_dim, module_feature_dim
from repro.graph.hetero import EdgeType, HeteroGraph

__all__ = [
    "HeteroGraph",
    "EdgeType",
    "build_hetero_graph",
    "ap_feature_dim",
    "module_feature_dim",
]
