"""Static node features for the heterogeneous graph."""

from __future__ import annotations

import numpy as np

from repro.netlist.circuit import Circuit
from repro.netlist.devices import Device, DeviceType, MOSFET
from repro.netlist.nets import Net, NetType
from repro.router.guidance import AccessPoint

_NET_TYPES = list(NetType)
_DEVICE_TYPES = list(DeviceType)
_PIN_NAMES = ["G", "D", "S", "PLUS", "MINUS"]


def ap_feature_dim() -> int:
    """Width of the access-point feature vector."""
    # net-type one-hot + pin one-hot(+other) + [norm x, y, layer, degree,
    # weight, symmetric flag]
    return len(_NET_TYPES) + len(_PIN_NAMES) + 1 + 6


def module_feature_dim() -> int:
    """Width of the module feature vector."""
    # device-type one-hot + [norm x, y, w, h, log-current, pin count]
    return len(_DEVICE_TYPES) + 6


def ap_features(
    ap: AccessPoint, net: Net, circuit: Circuit, extent: tuple[float, float, float]
) -> np.ndarray:
    """Feature vector of one access point."""
    net_onehot = np.zeros(len(_NET_TYPES))
    net_onehot[_NET_TYPES.index(net.net_type)] = 1.0

    pin_onehot = np.zeros(len(_PIN_NAMES) + 1)
    if ap.pin in _PIN_NAMES:
        pin_onehot[_PIN_NAMES.index(ap.pin)] = 1.0
    else:
        pin_onehot[-1] = 1.0

    nx, ny, nl = extent
    ix, iy, layer = ap.cell
    symmetric = (
        1.0
        if net.self_symmetric or circuit.symmetry_pair_of(net.name) is not None
        else 0.0
    )
    scalars = np.array([
        ix / nx,
        iy / ny,
        layer / nl,
        min(net.degree, 16) / 16.0,
        net.weight / 4.0,
        symmetric,
    ])
    return np.concatenate([net_onehot, pin_onehot, scalars])


def module_features(
    device: Device, position: tuple[float, float], extent: tuple[float, float, float]
) -> np.ndarray:
    """Feature vector of one module (placed device)."""
    type_onehot = np.zeros(len(_DEVICE_TYPES))
    type_onehot[_DEVICE_TYPES.index(device.device_type)] = 1.0

    nx, ny, _ = extent
    current = device.bias_current if isinstance(device, MOSFET) else 0.0
    scalars = np.array([
        position[0] / nx,
        position[1] / ny,
        device.width / 20.0,
        device.height / 20.0,
        np.log10(max(current, 1e-9)) / 9.0 + 1.0,
        len(device.pins) / 8.0,
    ])
    return np.concatenate([type_onehot, scalars])
