"""repro.lint: the AST-based invariant linter for this repository.

The reproduction's hard guarantees — bit-identical parallel dataset
generation, the typed :class:`~repro.reliability.errors.ReproError`
taxonomy, traces and counters identical across ``--workers`` counts —
all rest on code conventions: randomness flows through seeded
``np.random.Generator`` objects, timing through ``perf_counter``-based
helpers, pipeline failures through the taxonomy, metric and span names
through the schemes locked by the golden fixtures.  This package makes
those conventions *executable*: a pure-stdlib static analyzer that
parses every file once, runs all registered rules over the shared AST,
and fails CI on any non-baselined finding.

Usage::

    PYTHONPATH=src python -m repro.lint                 # lint src/repro
    PYTHONPATH=src python -m repro.lint --list-rules    # rule catalog
    PYTHONPATH=src python -m repro.lint --format=github # PR annotations

Suppress a single finding inline with a one-line constraint comment::

    stamp = time.time()  # repro-lint: disable=CLK001 -- manifest wall-clock

See ``docs/STATIC_ANALYSIS.md`` for every rule id, the invariant it
protects, and the baseline workflow.
"""

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, lint_file, lint_source, run_lint
from repro.lint.findings import Finding
from repro.lint.rules import all_rules, rule_catalog

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "all_rules",
    "lint_file",
    "lint_source",
    "load_baseline",
    "load_config",
    "rule_catalog",
    "run_lint",
    "write_baseline",
]
