"""The committed baseline: grandfathered findings that don't fail CI.

A baseline entry is a fingerprint of (rule id, file path, offending
line *text*, occurrence index) — deliberately not the line number, so
edits elsewhere in the file don't invalidate it.  The occurrence index
disambiguates identical violations on identical lines (the n-th
``x == 0.0`` of a file keeps its own entry).

The intended workflow keeps the baseline **empty**: fix or suppress
findings instead of baselining them.  The file exists for the one
legitimate case — landing a new rule against a tree with pre-existing
violations that a separate change will burn down — and
``python -m repro.lint --write-baseline`` regenerates it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

#: Schema version of the baseline file; bump on incompatible changes.
#: v2 hashes the offending line text into the fingerprint (stable under
#: pure line-number shifts like v1, but bounded-size and insensitive to
#: surrounding whitespace edits).
BASELINE_VERSION = 2


def _fingerprints(findings: list[Finding]) -> list[str]:
    """Stable fingerprint per finding, with occurrence disambiguation."""
    seen: dict[tuple[str, str, str], int] = {}
    out = []
    for finding in sorted(findings):
        key = finding.fingerprint_key()
        index = seen.get(key, 0)
        seen[key] = index + 1
        rule, path, text = key
        digest = hashlib.sha256(text.strip().encode("utf-8")).hexdigest()[:16]
        out.append(f"{rule}::{path}::{digest}::{index}")
    return out


@dataclass
class Baseline:
    """The set of grandfathered finding fingerprints."""

    entries: set[str] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.entries)

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], set[str]]:
        """Split findings into (new, baselined) plus stale entries.

        Stale entries — present in the baseline but no longer found —
        signal that the baseline can be ratcheted down.
        """
        new: list[Finding] = []
        matched: list[Finding] = []
        used: set[str] = set()
        ordered = sorted(findings)
        for finding, fingerprint in zip(ordered, _fingerprints(ordered)):
            if fingerprint in self.entries:
                matched.append(finding)
                used.add(fingerprint)
            else:
                new.append(finding)
        return new, matched, self.entries - used


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}, "
            f"expected {BASELINE_VERSION}")
    entries = data.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} entries must be a list")
    return Baseline(entries=set(entries))


def write_baseline(path: str | Path, findings: list[Finding]) -> Path:
    """Write ``findings`` as the new baseline; returns the path."""
    path = Path(path)
    payload = {
        "version": BASELINE_VERSION,
        "entries": sorted(set(_fingerprints(list(findings)))),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
