"""Inline suppression comments: ``# repro-lint: disable=RULE-ID``.

Three forms, parsed from real comment tokens (``tokenize``), so the
directive inside a string literal is inert:

* ``# repro-lint: disable=CLK001`` — suppresses findings of the listed
  rules on the *same* line;
* ``# repro-lint: disable-next-line=CLK001`` — same, one line down
  (for lines too long to carry the comment);
* ``# repro-lint: disable-file=CLK001`` — anywhere in the file,
  suppresses the listed rules for the whole file.

Several ids separate with commas; ``all`` matches every rule.  Text
after ``--`` is the required human justification and is ignored by the
parser (but reviewers should not be ignoring it).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-next-line|-file)?)\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_,\s-]+?)(?:\s*--.*)?$"
)


@dataclass
class Suppressions:
    """Parsed suppression directives of one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def add(self, line: int, rule_ids: set[str]) -> None:
        self.by_line.setdefault(line, set()).update(rule_ids)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rule_id = rule_id.upper()
        if rule_id in self.file_wide or "ALL" in self.file_wide:
            return True
        active = self.by_line.get(line)
        return bool(active) and (rule_id in active or "ALL" in active)


def _parse_ids(raw: str) -> set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def parse_suppressions(source: str) -> Suppressions:
    """Extract every suppression directive from ``source``.

    Tokenization errors (the engine only calls this after a successful
    ``ast.parse``, so they are rare) degrade to "no suppressions"
    rather than crashing the lint run.
    """
    out = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if not match:
            continue
        ids = _parse_ids(match.group("ids"))
        if not ids:
            continue
        kind = match.group("kind")
        if kind == "disable-file":
            out.file_wide.update(ids)
        elif kind == "disable-next-line":
            out.add(token.start[0] + 1, ids)
        else:
            out.add(token.start[0], ids)
    return out
