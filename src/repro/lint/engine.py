"""The lint engine: one parse, one walk, all rules, then filters.

Per file the engine parses once, builds the import table, walks the
AST a single time dispatching each node to every rule that registered
a ``visit_<NodeType>`` handler, then filters the raw findings through
inline suppressions.  :func:`run_lint` adds path discovery, the
configured excludes, and the committed-baseline partition on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.lint.baseline import Baseline, load_baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules import all_rules
from repro.lint.rules.base import FileContext, Rule
from repro.lint.suppress import parse_suppressions

#: Rule id used for files that fail to parse; not suppressible via
#: select/ignore because an unparseable file checks nothing at all.
PARSE_ERROR_ID = "PARSE000"


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` invocation.

    Attributes:
        findings: NEW findings (not suppressed, not baselined), sorted.
        baselined: findings matched by the committed baseline.
        stale_baseline: baseline entries that no longer match anything —
            the baseline can be ratcheted down by these.
        files_checked: number of files parsed and walked.
        suppressed: number of findings silenced by inline directives.
    """

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: set[str] = field(default_factory=set)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _module_name(rel_path: str) -> str | None:
    """Dotted module for a repo-relative path (``src/`` layout aware)."""
    parts = Path(rel_path).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return None
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def _dispatch_table(rules: list[Rule]) -> dict[type, list]:
    table: dict[type, list] = {}
    for rule in rules:
        for node_type, method_name in rule.visitors():
            table.setdefault(node_type, []).append(
                (rule, getattr(rule, method_name)))
    return table


def _walk(node: ast.AST, table: dict[type, list], ctx: FileContext) -> None:
    handlers = table.get(type(node))
    if handlers:
        for _rule, method in handlers:
            method(node, ctx)
    ctx.parent_stack.append(node)
    for child in ast.iter_child_nodes(node):
        _walk(child, table, ctx)
    ctx.parent_stack.pop()


def lint_source(source: str, rel_path: str, rules: list[Rule] | None = None,
                module: str | None = None) -> tuple[list[Finding], int]:
    """Lint one source string; returns (findings, suppressed count).

    ``module`` overrides the dotted-module guess — tests use it to put
    fixture files "inside" a package-scoped rule's jurisdiction.
    """
    if rules is None:
        rules = all_rules()
    if module is None:
        module = _module_name(rel_path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        finding = Finding(
            path=rel_path, line=line, col=(exc.offset or 0) + 1,
            rule_id=PARSE_ERROR_ID,
            message=f"file does not parse: {exc.msg}",
            line_text="")
        return [finding], 0
    ctx = FileContext(rel_path, source, module=module)
    ctx.record_imports(tree)
    _walk(tree, _dispatch_table(rules), ctx)
    suppressions = parse_suppressions(source)
    kept = [f for f in ctx.findings
            if not suppressions.is_suppressed(f.rule_id, f.line)]
    return sorted(kept), len(ctx.findings) - len(kept)


def lint_file(path: str | Path, root: str | Path,
              rules: list[Rule] | None = None,
              module: str | None = None) -> tuple[list[Finding], int]:
    """Lint one file; paths in findings are relative to ``root``."""
    path, root = Path(path), Path(root)
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    source = path.read_text(encoding="utf-8")
    return lint_source(source, rel, rules=rules, module=module)


def iter_python_files(paths: list[Path],
                      root: Path,
                      exclude: tuple[str, ...] = ()) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    kept = []
    for path in sorted(out):
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        if any(fnmatch(rel, pattern) for pattern in exclude):
            continue
        kept.append(path)
    return kept


def run_lint(paths: list[str | Path] | None = None,
             config: LintConfig | None = None,
             rules: list[Rule] | None = None,
             baseline: Baseline | None = None) -> LintResult:
    """Lint ``paths`` (default: the configured targets) end to end."""
    config = config if config is not None else LintConfig()
    root = config.root
    if rules is None:
        rules = all_rules(ignore=config.ignored())
    targets = [Path(p) if Path(p).is_absolute() else root / p
               for p in (paths or config.paths)]
    if baseline is None:
        baseline_path = config.baseline_path()
        baseline = (load_baseline(baseline_path)
                    if baseline_path is not None else Baseline())

    result = LintResult()
    collected: list[Finding] = []
    for path in iter_python_files(targets, root, config.exclude):
        findings, suppressed = lint_file(path, root, rules=rules)
        collected.extend(findings)
        result.suppressed += suppressed
        result.files_checked += 1
    new, matched, stale = baseline.partition(collected)
    result.findings = new
    result.baselined = matched
    result.stale_baseline = stale
    return result
