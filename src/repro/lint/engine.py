"""The lint engine: two phases — per-file rules, then whole-program.

Phase 1 parses each file once, builds the import table, walks the AST
a single time dispatching each node to every per-file rule that
registered a ``visit_<NodeType>`` handler, and extracts the module's
:class:`~repro.lint.summaries.ModuleSummary` from the same tree.
Summaries (and the per-file findings) are cached under ``.lint-cache/``
keyed by content hash, and the parse/walk step fans out across
processes with ``jobs > 1``.

Phase 2 links the summaries into a project call graph
(:mod:`repro.lint.callgraph`) and runs the interprocedural rules
(:mod:`repro.lint.rules.wholeprogram`).  Graph findings are anchored
at real source lines, so the same inline suppressions apply.

Suppression matching honors *decorator line groups*: a finding anchored
at a decorator line of a ``def`` is suppressed by a directive on the
``def`` line and vice versa (the decoration is one statement; the
directive should not care which physical line the rule picked).
"""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.lint.baseline import Baseline, load_baseline
from repro.lint.cache import SummaryCache, source_digest
from repro.lint.callgraph import Project
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules import all_rules
from repro.lint.rules.base import FileContext, Rule
from repro.lint.rules.wholeprogram import (
    GraphRule,
    ProjectContext,
    all_graph_rules,
)
from repro.lint.summaries import ModuleSummary, summarize_module
from repro.lint.suppress import Suppressions, parse_suppressions

#: Rule id used for files that fail to parse; not suppressible via
#: select/ignore because an unparseable file checks nothing at all.
PARSE_ERROR_ID = "PARSE000"


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` invocation.

    Attributes:
        findings: NEW findings (not suppressed, not baselined), sorted.
        baselined: findings matched by the committed baseline.
        stale_baseline: baseline entries that no longer match anything —
            the baseline can be ratcheted down by these.
        files_checked: number of files covered (parsed or cache-hit).
        suppressed: number of findings silenced by inline directives.
        reanalyzed: dotted modules re-analyzed this run — the dirty
            files plus (when a cache is active) their reverse import
            dependencies; equals all modules on a cold run.
        cache_hits: files served from the summary cache.
        cache_misses: files that had to be re-parsed.
    """

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: set[str] = field(default_factory=set)
    files_checked: int = 0
    suppressed: int = 0
    reanalyzed: list[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: The linked call-graph project (phase 2 input); exposed so the
    #: CLI can regenerate docs/EXCEPTIONS.md from the same analysis.
    project: Project | None = None

    @property
    def clean(self) -> bool:
        return not self.findings


def _module_name(rel_path: str) -> str | None:
    """Dotted module for a repo-relative path (``src/`` layout aware)."""
    parts = Path(rel_path).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return None
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def _dispatch_table(rules: list[Rule]) -> dict[type, list]:
    table: dict[type, list] = {}
    for rule in rules:
        for node_type, method_name in rule.visitors():
            table.setdefault(node_type, []).append(
                (rule, getattr(rule, method_name)))
    return table


def _walk(node: ast.AST, table: dict[type, list], ctx: FileContext) -> None:
    handlers = table.get(type(node))
    if handlers:
        for _rule, method in handlers:
            method(node, ctx)
    ctx.parent_stack.append(node)
    for child in ast.iter_child_nodes(node):
        _walk(child, table, ctx)
    ctx.parent_stack.pop()


def decorator_line_groups(tree: ast.AST) -> dict[int, tuple[int, ...]]:
    """Line-equivalence groups for suppression matching.

    For every decorated ``def``/``class``, the decorator lines and the
    ``def`` line form one group: a suppression on any member line
    covers a finding anchored at any other member line.
    """
    groups: dict[int, tuple[int, ...]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        if not node.decorator_list:
            continue
        lines = tuple(sorted({node.lineno,
                              *(d.lineno for d in node.decorator_list)}))
        for line in lines:
            groups[line] = lines
    return groups


def _is_suppressed(suppressions: Suppressions,
                   groups: dict[int, tuple[int, ...]],
                   rule_id: str, line: int) -> bool:
    for member in groups.get(line, (line,)):
        if suppressions.is_suppressed(rule_id, member):
            return True
    return False


def _analyze_source(source: str, rel_path: str, module: str | None,
                    rules: list[Rule],
                    ) -> tuple[list[Finding], int, ModuleSummary | None]:
    """Parse + lint + summarize one source string (one parse total).

    Returns (kept findings, suppressed count, summary); the summary is
    ``None`` for parse errors and for files outside any module path.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        finding = Finding(
            path=rel_path, line=line, col=(exc.offset or 0) + 1,
            rule_id=PARSE_ERROR_ID,
            message=f"file does not parse: {exc.msg}",
            line_text="")
        return [finding], 0, None
    ctx = FileContext(rel_path, source, module=module)
    ctx.record_imports(tree)
    _walk(tree, _dispatch_table(rules), ctx)
    suppressions = parse_suppressions(source)
    groups = decorator_line_groups(tree)
    kept = [f for f in ctx.findings
            if not _is_suppressed(suppressions, groups, f.rule_id, f.line)]
    summary = None
    if module is not None:
        summary = summarize_module(tree, module, rel_path,
                                   digest=source_digest(source))
    return sorted(kept), len(ctx.findings) - len(kept), summary


def lint_source(source: str, rel_path: str, rules: list[Rule] | None = None,
                module: str | None = None) -> tuple[list[Finding], int]:
    """Lint one source string; returns (findings, suppressed count).

    ``module`` overrides the dotted-module guess — tests use it to put
    fixture files "inside" a package-scoped rule's jurisdiction.
    """
    if rules is None:
        rules = all_rules()
    if module is None:
        module = _module_name(rel_path)
    findings, suppressed, _summary = _analyze_source(
        source, rel_path, module, rules)
    return findings, suppressed


def lint_file(path: str | Path, root: str | Path,
              rules: list[Rule] | None = None,
              module: str | None = None) -> tuple[list[Finding], int]:
    """Lint one file; paths in findings are relative to ``root``."""
    path, root = Path(path), Path(root)
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    source = path.read_text(encoding="utf-8")
    return lint_source(source, rel, rules=rules, module=module)


def iter_python_files(paths: list[Path],
                      root: Path,
                      exclude: tuple[str, ...] = ()) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    kept = []
    for path in sorted(out):
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        if any(fnmatch(rel, pattern) for pattern in exclude):
            continue
        kept.append(path)
    return kept


def _analyze_worker(args: tuple[str, str, str | None, tuple[str, ...]],
                    ) -> dict:
    """Process-pool task: analyze one file, return a picklable dict."""
    path_str, rel, module, rule_ids = args
    source = Path(path_str).read_text(encoding="utf-8")
    rules = all_rules(select=set(rule_ids)) if rule_ids else []
    findings, suppressed, summary = _analyze_source(
        source, rel, module, rules)
    return {
        "rel": rel,
        "digest": source_digest(source),
        "module": module,
        "findings": [f.to_dict() for f in findings],
        "suppressed": suppressed,
        "summary": summary.to_dict() if summary is not None else None,
    }


def _finding_from_dict(data: dict) -> Finding:
    return Finding(path=data["path"], line=data["line"], col=data["col"],
                   rule_id=data["rule"], message=data["message"],
                   line_text=data.get("line_text", ""))


def _fill_and_filter_graph_findings(
        raw: list[Finding], sources: dict[str, str],
        root: Path | None) -> tuple[list[Finding], int]:
    """Attach line text to graph findings and apply suppressions.

    Graph rules emit findings with empty ``line_text`` (they work on
    summaries, not sources); this re-reads only the *flagged* files to
    fill the text and honor inline directives + decorator groups.
    """
    kept: list[Finding] = []
    suppressed = 0
    per_file: dict[str, tuple[list[str], Suppressions,
                              dict[int, tuple[int, ...]]]] = {}
    for finding in raw:
        state = per_file.get(finding.path)
        if state is None:
            source = sources.get(finding.path)
            if source is None and root is not None:
                try:
                    source = (root / finding.path).read_text(
                        encoding="utf-8")
                except OSError:
                    source = None
            if source is None:
                state = ([], Suppressions(), {})
            else:
                try:
                    groups = decorator_line_groups(ast.parse(source))
                except SyntaxError:
                    groups = {}
                state = (source.splitlines(), parse_suppressions(source),
                         groups)
            per_file[finding.path] = state
        lines, suppressions, groups = state
        if _is_suppressed(suppressions, groups, finding.rule_id,
                          finding.line):
            suppressed += 1
            continue
        text = ""
        if 1 <= finding.line <= len(lines):
            text = lines[finding.line - 1].strip()
        kept.append(Finding(
            path=finding.path, line=finding.line, col=finding.col,
            rule_id=finding.rule_id, message=finding.message,
            line_text=text))
    return sorted(kept), suppressed


def build_project(summaries: dict[str, ModuleSummary]) -> Project:
    """Link module summaries into a call-graph project (phase 2)."""
    return Project(summaries)


def lint_project_sources(
        files: list[tuple[str, str, str]],
        graph_rules: list[GraphRule] | None = None,
        exceptions_doc: str | None = None) -> list[Finding]:
    """Run the whole-program rules over in-memory sources (test helper).

    ``files`` is a list of ``(rel_path, module, source)`` triples; the
    module name places a fixture "inside" a rule's jurisdiction (e.g.
    ``repro.perf.parallel`` to make its ``_worker_run`` an entry point).
    Inline suppressions in the sources apply as usual.
    """
    summaries: dict[str, ModuleSummary] = {}
    sources: dict[str, str] = {}
    for rel, module, source in files:
        tree = ast.parse(source)
        summaries[module] = summarize_module(
            tree, module, rel, digest=source_digest(source))
        sources[rel] = source
    project = Project(summaries)
    context = ProjectContext(root=None, exceptions_doc=exceptions_doc)
    rules = graph_rules if graph_rules is not None else all_graph_rules()
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(project, context))
    kept, _suppressed = _fill_and_filter_graph_findings(raw, sources, None)
    return kept


def run_lint(paths: list[str | Path] | None = None,
             config: LintConfig | None = None,
             rules: list[Rule] | None = None,
             baseline: Baseline | None = None,
             *,
             graph_rules: list[GraphRule] | None = None,
             whole_program: bool = True,
             cache: SummaryCache | None = None,
             jobs: int = 1,
             changed_only: bool = False,
             project_context: ProjectContext | None = None) -> LintResult:
    """Lint ``paths`` (default: the configured targets) end to end.

    Args:
        graph_rules: interprocedural rules for phase 2 (default: all
            registered, minus the config's ignore set).
        whole_program: set False to skip phase 2 entirely.
        cache: summary cache; None (the default) runs cache-less, so
            library callers and tests never write ``.lint-cache/``.
        jobs: process-pool width for the parse/summarize phase.
        changed_only: with a warm cache, skip phase 2 when nothing
            changed; ``result.reanalyzed`` lists the dirty modules
            plus their reverse import dependencies.
    """
    config = config if config is not None else LintConfig()
    root = config.root
    if rules is None:
        rules = all_rules(ignore=config.ignored())
    if graph_rules is None and whole_program:
        graph_rules = all_graph_rules(ignore=config.ignored())
    targets = [Path(p) if Path(p).is_absolute() else root / p
               for p in (paths or config.paths)]
    if baseline is None:
        baseline_path = config.baseline_path()
        baseline = (load_baseline(baseline_path)
                    if baseline_path is not None else Baseline())

    result = LintResult()
    collected: list[Finding] = []
    summaries: dict[str, ModuleSummary] = {}
    sources: dict[str, str] = {}
    dirty_modules: set[str] = set()
    pending: list[tuple[str, str, str | None, str, str]] = []
    # Cached per-file findings were produced under a specific rule
    # selection; a run with a different --select/--ignore must miss.
    rules_key = ",".join(sorted(r.id for r in rules))

    for path in iter_python_files(targets, root, config.exclude):
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        module = _module_name(rel)
        source = path.read_text(encoding="utf-8")
        sources[rel] = source
        digest = source_digest(source)
        result.files_checked += 1
        if cache is not None:
            entry = cache.get(rel, digest, rules_key)
            if entry is not None:
                collected.extend(entry.findings)
                result.suppressed += entry.suppressed
                result.cache_hits += 1
                summaries[entry.summary.module] = entry.summary
                continue
            result.cache_misses += 1
        pending.append((str(path), rel, module, source, digest))
        if module is not None:
            dirty_modules.add(module)

    rule_ids = tuple(r.id for r in rules)
    if jobs > 1 and len(pending) > 1:
        worker_args = [(p, rel, module, rule_ids)
                       for p, rel, module, _source, _digest in pending]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(_analyze_worker, worker_args))
        for (_p, rel, module, _source, digest), out in zip(
                pending, outcomes):
            findings = [_finding_from_dict(f) for f in out["findings"]]
            summary = (ModuleSummary.from_dict(out["summary"])
                       if out["summary"] is not None else None)
            collected.extend(findings)
            result.suppressed += out["suppressed"]
            if summary is not None:
                summaries[summary.module] = summary
                if cache is not None:
                    cache.put(rel, digest, summary, findings,
                              out["suppressed"], rules_key)
    else:
        for _p, rel, module, source, digest in pending:
            findings, suppressed, summary = _analyze_source(
                source, rel, module, rules)
            collected.extend(findings)
            result.suppressed += suppressed
            if summary is not None:
                summaries[summary.module] = summary
                if cache is not None:
                    cache.put(rel, digest, summary, findings, suppressed,
                              rules_key)

    # -- phase 2: link + interprocedural rules ---------------------------------
    project: Project | None = None
    if summaries:
        project = build_project(summaries)
    result.project = project

    if cache is not None and project is not None:
        result.reanalyzed = sorted(project.dependents_closure(dirty_modules))
    else:
        result.reanalyzed = sorted(summaries)

    run_graph = bool(whole_program and graph_rules and project is not None)
    if run_graph and changed_only and cache is not None and not dirty_modules:
        run_graph = False  # warm cache, nothing changed: phase 2 is a no-op
    if run_graph:
        context = project_context if project_context is not None \
            else ProjectContext(root=root)
        raw: list[Finding] = []
        for rule in graph_rules or ():
            raw.extend(rule.check(project, context))
        kept, suppressed = _fill_and_filter_graph_findings(
            raw, sources, root)
        collected.extend(kept)
        result.suppressed += suppressed

    new, matched, stale = baseline.partition(collected)
    result.findings = new
    result.baselined = matched
    result.stale_baseline = stale
    return result
