"""Linter configuration from ``pyproject.toml`` (``[tool.repro-lint]``).

Recognized keys::

    [tool.repro-lint]
    paths = ["src/repro"]            # what to lint by default
    baseline = "lint-baseline.json"  # grandfathered findings
    ignore = []                      # rule ids switched off globally
    exclude = []                     # fnmatch patterns on repo-relative paths

``tomllib`` ships with Python 3.11+; on 3.10 (the floor of
``requires-python``) the stdlib has no TOML parser, so configuration
degrades to the defaults below rather than failing — the CLI flags
still override everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # Python 3.10: no stdlib TOML parser.
    tomllib = None  # type: ignore[assignment]

#: Default lint targets, repo-relative.
DEFAULT_PATHS = ("src/repro",)

#: Default baseline location, repo-relative.
DEFAULT_BASELINE = "lint-baseline.json"


@dataclass
class LintConfig:
    """Effective linter configuration."""

    root: Path = field(default_factory=Path.cwd)
    paths: tuple[str, ...] = DEFAULT_PATHS
    baseline: str | None = DEFAULT_BASELINE
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def baseline_path(self) -> Path | None:
        if not self.baseline:
            return None
        return self.root / self.baseline

    def ignored(self) -> set[str]:
        return {rule_id.upper() for rule_id in self.ignore}


def _string_tuple(value: object, key: str) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
            isinstance(item, str) for item in value):
        raise ValueError(f"[tool.repro-lint] {key} must be a list of strings")
    return tuple(value)


def load_config(root: str | Path) -> LintConfig:
    """Load ``[tool.repro-lint]`` from ``root``'s pyproject.toml."""
    root = Path(root)
    config = LintConfig(root=root)
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.exists():
        return config
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, dict):
        raise ValueError("[tool.repro-lint] must be a table")
    if "paths" in section:
        config.paths = _string_tuple(section["paths"], "paths")
    if "baseline" in section:
        baseline = section["baseline"]
        if baseline is not None and not isinstance(baseline, str):
            raise ValueError("[tool.repro-lint] baseline must be a string")
        config.baseline = baseline or None
    if "ignore" in section:
        config.ignore = _string_tuple(section["ignore"], "ignore")
    if "exclude" in section:
        config.exclude = _string_tuple(section["exclude"], "exclude")
    return config
