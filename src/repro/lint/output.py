"""Finding renderers: human text, machine JSON, GitHub annotations.

* ``text`` — ``path:line:col: ID message`` lines plus a summary, for
  terminals and test-failure output;
* ``json`` — one object with findings + run stats, for tooling;
* ``github`` — ``::error`` workflow commands, so the CI lint job
  surfaces findings as inline PR annotations.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

FORMATS = ("text", "json", "github")


def render_text(result: LintResult) -> str:
    lines = [f"{f.location()}: {f.rule_id} {f.message}"
             for f in result.findings]
    summary = (f"{len(result.findings)} finding"
               f"{'s' if len(result.findings) != 1 else ''} "
               f"in {result.files_checked} files"
               f" ({result.suppressed} suppressed,"
               f" {len(result.baselined)} baselined)")
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entries"
    if result.cache_hits or result.cache_misses:
        summary += (f", cache {result.cache_hits} hit"
                    f"{'s' if result.cache_hits != 1 else ''} /"
                    f" {result.cache_misses} miss"
                    f"{'es' if result.cache_misses != 1 else ''}"
                    f", {len(result.reanalyzed)} modules re-analyzed")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": sorted(result.stale_baseline),
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "reanalyzed": list(result.reanalyzed),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_annotation(text: str) -> str:
    """Escape per the workflow-command rules (%, CR, LF in messages)."""
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


def render_github(result: LintResult) -> str:
    lines = []
    for finding in result.findings:
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col},title=repro.lint {finding.rule_id}::"
            f"{_escape_annotation(finding.message)}")
    lines.append(
        f"{len(result.findings)} findings in {result.files_checked} files")
    return "\n".join(lines)


def render(result: LintResult, fmt: str) -> str:
    if fmt == "text":
        return render_text(result)
    if fmt == "json":
        return render_json(result)
    if fmt == "github":
        return render_github(result)
    raise ValueError(f"unknown format {fmt!r}, expected one of {FORMATS}")
