"""The :class:`Finding` record every rule emits.

A finding pins one rule violation to a file position plus the source
line's text.  The line *text* (not the number) feeds the baseline
fingerprint, so unrelated edits above a grandfathered finding don't
invalidate the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: repo-relative POSIX path of the offending file.
        line: 1-based line number.
        col: 1-based column number.
        rule_id: id of the rule that fired (e.g. ``CLK001``).
        message: human-readable explanation with the fix direction.
        line_text: stripped source text of the offending line.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str = field(compare=False)
    line_text: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "line_text": self.line_text,
        }

    def fingerprint_key(self) -> tuple[str, str, str]:
        """The baseline identity, independent of line numbers."""
        return (self.rule_id, self.path, self.line_text)
