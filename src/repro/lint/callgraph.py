"""Phase 2 of the whole-program analyzer: link summaries into a call graph.

A :class:`Project` takes the per-module summaries produced by
:mod:`repro.lint.summaries` and builds

* a project-wide symbol table with import-alias resolution that follows
  re-exports through package ``__init__`` modules and star imports
  (with a cycle guard, so mutually importing modules terminate);
* a class hierarchy (bases resolved through the same table) used for
  CHA-style virtual dispatch of ``self.method()`` calls;
* a call-graph whose edges carry a *kind*:

  - ``direct``  — the callee resolved statically (module function,
    imported symbol, or a receiver whose class is known from a
    parameter annotation / ``x = Ctor(...)`` local inference /
    dataclass field annotation);
  - ``self``    — virtual dispatch on ``self``/``cls`` (the defining
    class plus every subclass that overrides);
  - ``ctor``    — instantiation ``Cls(...)`` linking to ``__init__`` /
    ``__post_init__`` / ``__new__``;
  - ``attr``    — name-match fallback: ``x.foo()`` on an unknown
    receiver links to every method named ``foo`` in the project.
    Dunder names are excluded, which keeps the over-approximation
    bounded (no edge to every ``__init__`` from every call).

Rules choose which kinds to follow: the purity rules (WRK/TAPE/PRE)
follow all four for soundness; EXC101 follows only
``direct``/``self``/``ctor`` so the documented exception table is not
polluted by name-coincidence edges.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from .summaries import ClassSummary, FunctionSummary, ModuleSummary

#: All edge kinds, in the order rules usually request them.
EDGE_KINDS = ("direct", "self", "ctor", "attr")


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


@dataclass(frozen=True)
class Symbol:
    """A resolved name: ``kind`` is ``module`` / ``func`` / ``class``;
    ``key`` is the module name, function node key (``module:qualpath``)
    or class key (``module:ClassName``)."""

    kind: str
    key: str


@dataclass(frozen=True)
class Edge:
    """One call edge; ``line`` is the call site in ``src``'s module."""

    src: str
    dst: str
    kind: str
    line: int


class Project:
    """Linked whole-program view over a set of module summaries."""

    def __init__(self, summaries: Mapping[str, ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = dict(summaries)
        #: node key ``module:qualpath`` -> function summary
        self.functions: dict[str, FunctionSummary] = {}
        #: class key ``module:ClassName`` -> class summary
        self.classes: dict[str, ClassSummary] = {}
        self.node_module: dict[str, str] = {}
        for mod, summ in self.modules.items():
            for qualpath, fn in summ.functions.items():
                key = f"{mod}:{qualpath}"
                self.functions[key] = fn
                self.node_module[key] = mod
            for name, cls in summ.classes.items():
                self.classes[f"{mod}:{name}"] = cls

        self._bases: dict[str, list[str]] = {}
        self._subclasses: dict[str, set[str]] = defaultdict(set)
        self._build_hierarchy()

        # Name-match index for ``attr`` edges: bare method name -> nodes.
        self._method_index: dict[str, list[str]] = defaultdict(list)
        for key in sorted(self.functions):
            fn = self.functions[key]
            if fn.cls is not None and not _is_dunder(fn.name):
                self._method_index[fn.name].append(key)

        self._adj: dict[str, list[Edge]] = defaultdict(list)
        self._build_edges()

        self._rev_imports: dict[str, set[str]] | None = None

    # -- symbol resolution --------------------------------------------------------

    def resolve(self, dotted: str,
                _seen: set[tuple[str, tuple[str, ...]]] | None = None,
                ) -> Symbol | None:
        """Resolve a fully-qualified dotted name to a project symbol.

        Follows import aliases and ``__init__`` re-exports; names that
        leave the analyzed module set (``numpy.*`` …) resolve to None.
        """
        if dotted in self.modules:
            return Symbol("module", dotted)
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            if module in self.modules:
                return self._resolve_parts(
                    module, tuple(parts[i:]), _seen if _seen is not None
                    else set())
        return None

    def resolve_in(self, module: str, chain: str) -> Symbol | None:
        """Resolve a dotted chain as it appears inside ``module``."""
        if module not in self.modules:
            return self.resolve(chain)
        return self._resolve_parts(module, tuple(chain.split(".")), set())

    def _resolve_parts(self, module: str, parts: tuple[str, ...],
                       seen: set[tuple[str, tuple[str, ...]]],
                       ) -> Symbol | None:
        key = (module, parts)
        if key in seen:
            return None
        seen.add(key)
        summ = self.modules.get(module)
        if summ is None or not parts:
            return None
        qualpath = ".".join(parts)
        if qualpath in summ.functions:
            return Symbol("func", f"{module}:{qualpath}")
        if parts[0] in summ.classes:
            if len(parts) == 1:
                return Symbol("class", f"{module}:{parts[0]}")
            if len(parts) == 2:
                # Possibly an inherited method: Cls.method.
                node = self._lookup_method(f"{module}:{parts[0]}", parts[1])
                if node is not None:
                    return Symbol("func", node)
            return None
        if parts[0] in summ.imports:
            target = summ.imports[parts[0]]
            dotted = ".".join([target, *parts[1:]])
            return self.resolve(dotted, seen)
        for star in summ.star_imports:
            found = self._resolve_parts(star, parts, seen)
            if found is not None:
                return found
        return None

    # -- class hierarchy ----------------------------------------------------------

    def _build_hierarchy(self) -> None:
        for ckey in sorted(self.classes):
            module = ckey.split(":", 1)[0]
            resolved: list[str] = []
            for base in self.classes[ckey].bases:
                sym = self.resolve_in(module, base)
                if sym is not None and sym.kind == "class":
                    resolved.append(sym.key)
                    self._subclasses[sym.key].add(ckey)
            self._bases[ckey] = resolved

    def ancestors(self, class_key: str) -> list[str]:
        """Proper ancestors of a class, nearest first (cycle-safe)."""
        out: list[str] = []
        seen = {class_key}
        queue = deque(self._bases.get(class_key, ()))
        while queue:
            base = queue.popleft()
            if base in seen:
                continue
            seen.add(base)
            out.append(base)
            queue.extend(self._bases.get(base, ()))
        return out

    def subclasses(self, class_key: str) -> set[str]:
        """All transitive subclasses of a class (cycle-safe)."""
        out: set[str] = set()
        queue = deque(self._subclasses.get(class_key, ()))
        while queue:
            sub = queue.popleft()
            if sub in out:
                continue
            out.add(sub)
            queue.extend(self._subclasses.get(sub, ()))
        return out

    def is_subclass_of(self, class_key: str, root_key: str) -> bool:
        return class_key == root_key or root_key in self.ancestors(class_key)

    def _lookup_method(self, class_key: str, name: str) -> str | None:
        """Resolve a method on a class, walking up the bases (MRO-ish)."""
        seen: set[str] = set()
        queue = deque([class_key])
        while queue:
            ckey = queue.popleft()
            if ckey in seen:
                continue
            seen.add(ckey)
            cls = self.classes.get(ckey)
            if cls is not None and name in cls.methods:
                module = ckey.split(":", 1)[0]
                return f"{module}:{cls.name}.{name}"
            queue.extend(self._bases.get(ckey, ()))
        return None

    def method_targets(self, class_key: str, name: str) -> list[str]:
        """CHA dispatch: the method as defined on the class (possibly
        inherited) plus every subclass override."""
        targets: list[str] = []
        for ckey in (class_key, *sorted(self.subclasses(class_key))):
            node = self._lookup_method(ckey, name)
            if node is not None and node not in targets:
                targets.append(node)
        return targets

    # -- edge construction --------------------------------------------------------

    def _ctor_targets(self, class_key: str) -> list[str]:
        targets: list[str] = []
        for hook in ("__init__", "__post_init__", "__new__"):
            node = self._lookup_method(class_key, hook)
            if node is not None and node not in targets:
                targets.append(node)
        return targets

    def _resolve_scoped(self, module: str, fn: FunctionSummary,
                        chain: str) -> Symbol | None:
        """Resolve ``chain`` seen from inside ``fn``: nested-function
        scopes first (``outer`` calling ``inner`` -> ``outer.inner``),
        then the module namespace."""
        summ = self.modules.get(module)
        if summ is not None:
            holder = fn.qualpath.split(".")
            for i in range(len(holder), 0, -1):
                prefix = ".".join(holder[:i])
                if prefix not in summ.functions:
                    continue  # class scopes don't leak into methods
                candidate = f"{prefix}.{chain}"
                if candidate in summ.functions:
                    return Symbol("func", f"{module}:{candidate}")
        return self.resolve_in(module, chain)

    def _root_class(self, module: str, fn: FunctionSummary,
                    root: str) -> str | None:
        """Class of a receiver variable, from its parameter annotation
        or a ``x = Ctor(...)`` / annotated-return local assignment."""
        for name in fn.arg_types.get(root, ()):
            sym = self.resolve_in(module, name)
            if sym is not None and sym.kind == "class":
                return sym.key
        source = fn.local_types.get(root)
        if source is not None:
            sym = self._resolve_scoped(module, fn, source)
            if sym is not None:
                if sym.kind == "class":
                    return sym.key
                if sym.kind == "func":
                    callee = self.functions[sym.key]
                    callee_mod = sym.key.split(":", 1)[0]
                    for name in callee.return_type:
                        ret = self.resolve_in(callee_mod, name)
                        if ret is not None and ret.kind == "class":
                            return ret.key
        return None

    def _field_class(self, class_key: str, field_name: str) -> str | None:
        """Class of an annotated field, searching inherited fields too."""
        for ckey in (class_key, *self.ancestors(class_key)):
            cls = self.classes.get(ckey)
            if cls is None:
                continue
            names = cls.fields.get(field_name)
            if not names:
                continue
            module = ckey.split(":", 1)[0]
            for name in names:
                sym = self.resolve_in(module, name)
                if sym is not None and sym.kind == "class":
                    return sym.key
        return None

    def _typed_chain_targets(self, class_key: str,
                             rest: tuple[str, ...]) -> list[str]:
        """Dispatch ``recv.a.b.m()`` once the receiver's class is known:
        intermediate segments walk annotated fields; the final segment
        is a method, or a callable-class field (-> its ``__call__``)."""
        if not rest:  # the receiver itself is called: instance __call__
            return self.method_targets(class_key, "__call__")
        for part in rest[:-1]:
            next_key = self._field_class(class_key, part)
            if next_key is None:
                return []
            class_key = next_key
        last = rest[-1]
        targets = self.method_targets(class_key, last)
        if targets:
            return targets
        field_key = self._field_class(class_key, last)
        if field_key is not None:
            return self.method_targets(field_key, "__call__")
        return []

    def _call_targets(self, module: str, fn: FunctionSummary, chain,
                      attr) -> list[tuple[str, str]]:
        if chain is None:
            if attr is not None and not _is_dunder(attr):
                return [(t, "attr") for t in self._method_index.get(attr, ())]
            return []
        parts = tuple(chain.split("."))
        root = parts[0]
        if root in ("self", "cls") and fn.cls is not None and len(parts) >= 2:
            targets = self._typed_chain_targets(f"{module}:{fn.cls}",
                                                parts[1:])
            if targets:
                return [(t, "self") for t in targets]
            if attr is not None and not _is_dunder(attr):
                return [(t, "attr") for t in self._method_index.get(attr, ())]
            return []
        receiver = self._root_class(module, fn, root)
        if receiver is not None:
            targets = self._typed_chain_targets(receiver, parts[1:])
            if targets:
                return [(t, "direct") for t in targets]
        sym = self._resolve_scoped(module, fn, chain)
        if sym is not None:
            if sym.kind == "func":
                return [(sym.key, "direct")]
            if sym.kind == "class":
                return [(t, "ctor") for t in self._ctor_targets(sym.key)]
        if attr is not None and not _is_dunder(attr):
            return [(t, "attr") for t in self._method_index.get(attr, ())]
        return []

    def _build_edges(self) -> None:
        for src in sorted(self.functions):
            fn = self.functions[src]
            module = self.node_module[src]
            seen: set[tuple[str, str]] = set()
            for call in fn.calls:
                for dst, kind in self._call_targets(
                        module, fn, call.chain, call.attr):
                    if (dst, kind) in seen:
                        continue
                    seen.add((dst, kind))
                    self._adj[src].append(Edge(src, dst, kind, call.line))
            self._adj[src].sort(key=lambda e: (e.line, e.dst, e.kind))

    def edges_from(self, node: str) -> list[Edge]:
        return list(self._adj.get(node, ()))

    def targets_of(self, node: str, call) -> list[tuple[str, str]]:
        """(target node, edge kind) pairs of one recorded call site."""
        fn = self.functions[node]
        module = self.node_module[node]
        return self._call_targets(module, fn, call.chain, call.attr)

    def lookup_method(self, class_key: str, name: str) -> str | None:
        """Public alias of the inherited-method lookup."""
        return self._lookup_method(class_key, name)

    # -- reachability -------------------------------------------------------------

    def reachable(self, entries: Iterable[str],
                  kinds: Iterable[str] = EDGE_KINDS,
                  ) -> dict[str, Edge | None]:
        """BFS over edges of the given kinds.

        Returns ``node -> predecessor edge`` (None for entry nodes);
        feed the result to :meth:`call_path` to reconstruct how a node
        was reached.
        """
        allowed = set(kinds)
        pred: dict[str, Edge | None] = {}
        queue: deque[str] = deque()
        for entry in entries:
            if entry in self.functions and entry not in pred:
                pred[entry] = None
                queue.append(entry)
        while queue:
            node = queue.popleft()
            for edge in self._adj.get(node, ()):
                if edge.kind in allowed and edge.dst not in pred:
                    pred[edge.dst] = edge
                    queue.append(edge.dst)
        return pred

    def call_path(self, pred: Mapping[str, Edge | None],
                  node: str) -> list[str]:
        """Entry-to-node call chain from a :meth:`reachable` result."""
        path = [node]
        while True:
            edge = pred.get(path[-1])
            if edge is None:
                break
            path.append(edge.src)
        path.reverse()
        return path

    # -- module dependency graph (for --changed-only) -----------------------------

    def _module_of(self, dotted: str) -> str | None:
        """Longest analyzed-module prefix of a fully-qualified name."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            module = ".".join(parts[:i])
            if module in self.modules:
                return module
        return None

    def _reverse_imports(self) -> dict[str, set[str]]:
        if self._rev_imports is None:
            rev: dict[str, set[str]] = defaultdict(set)
            for module, summ in self.modules.items():
                deps: set[str] = set()
                for target in summ.imports.values():
                    dep = self._module_of(target)
                    if dep is not None and dep != module:
                        deps.add(dep)
                for star in summ.star_imports:
                    dep = self._module_of(star)
                    if dep is not None and dep != module:
                        deps.add(dep)
                for dep in deps:
                    rev[dep].add(module)
            self._rev_imports = dict(rev)
        return self._rev_imports

    def dependents_closure(self, modules: Iterable[str]) -> set[str]:
        """The given modules plus everything that transitively imports
        them — the re-analysis set when only those modules changed."""
        rev = self._reverse_imports()
        out: set[str] = set()
        queue = deque(m for m in modules if m in self.modules)
        out.update(queue)
        while queue:
            module = queue.popleft()
            for dependent in rev.get(module, ()):
                if dependent not in out:
                    out.add(dependent)
                    queue.append(dependent)
        return out
