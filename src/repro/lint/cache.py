"""Incremental summary cache under ``.lint-cache/``.

One JSON file per analyzed source file, keyed by the source's content
hash: a warm run re-parses only files whose bytes changed, and
``--changed-only`` additionally skips re-*linting* unchanged modules
(their per-file findings are cached alongside the summary).

Entries are invalidated by digest mismatch and by schema bump
(:data:`CACHE_SCHEMA_VERSION` folds in the summary schema), so a
stale cache can never change lint output — at worst it is ignored.
Writes are atomic (tmp file + ``os.replace``) so parallel workers and
interrupted runs leave no torn entries.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.summaries import SUMMARY_SCHEMA_VERSION, ModuleSummary

#: Bump on any change to the entry layout below; combined with the
#: summary schema so either bump invalidates the cache.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory name, repo-root relative.
CACHE_DIR = ".lint-cache"


def source_digest(source: str) -> str:
    """Content hash used as the cache key for one file."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _finding_from_dict(data: dict) -> Finding:
    return Finding(path=data["path"], line=data["line"], col=data["col"],
                   rule_id=data["rule"], message=data["message"],
                   line_text=data.get("line_text", ""))


@dataclass
class CacheEntry:
    """Everything cached for one source file at one content digest."""

    digest: str
    summary: ModuleSummary
    findings: list[Finding]
    suppressed: int


class SummaryCache:
    """File-backed summary + per-file-findings cache."""

    def __init__(self, root: str | Path, directory: str = CACHE_DIR) -> None:
        self.path = Path(root) / directory
        self.hits = 0
        self.misses = 0

    def _entry_path(self, rel_path: str) -> Path:
        name = hashlib.sha256(rel_path.encode("utf-8")).hexdigest()[:32]
        return self.path / f"{name}.json"

    def get(self, rel_path: str, digest: str,
            rules_key: str = "") -> CacheEntry | None:
        """The cached entry for ``rel_path`` iff its digest matches.

        ``rules_key`` identifies the active rule selection — findings
        were computed under it, so a different selection is a miss.
        """
        entry_path = self._entry_path(rel_path)
        try:
            data = json.loads(entry_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (data.get("cache_schema") != CACHE_SCHEMA_VERSION
                or data.get("summary_schema") != SUMMARY_SCHEMA_VERSION
                or data.get("rel_path") != rel_path
                or data.get("rules_key", "") != rules_key
                or data.get("digest") != digest):
            self.misses += 1
            return None
        try:
            entry = CacheEntry(
                digest=digest,
                summary=ModuleSummary.from_dict(data["summary"]),
                findings=[_finding_from_dict(f)
                          for f in data.get("findings", [])],
                suppressed=int(data.get("suppressed", 0)))
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, rel_path: str, digest: str, summary: ModuleSummary,
            findings: list[Finding], suppressed: int,
            rules_key: str = "") -> None:
        """Store an entry atomically; IO errors are non-fatal (the
        cache is an accelerator, not a source of truth)."""
        payload = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "summary_schema": SUMMARY_SCHEMA_VERSION,
            "rel_path": rel_path,
            "rules_key": rules_key,
            "digest": digest,
            "summary": summary.to_dict(),
            "findings": [f.to_dict() for f in findings],
            "suppressed": suppressed,
        }
        entry_path = self._entry_path(rel_path)
        try:
            self.path.mkdir(parents=True, exist_ok=True)
            tmp = entry_path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(payload) + "\n", encoding="utf-8")
            os.replace(tmp, entry_path)
        except OSError:
            pass
