"""CLI entry point: ``python -m repro.lint [paths...]``.

Exit codes: 0 clean, 1 findings (or stale baseline entries under
``--strict-baseline``, or the ``--max-seconds`` wall-time gate blown),
2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.lint.baseline import write_baseline
from repro.lint.cache import SummaryCache
from repro.lint.config import load_config
from repro.lint.engine import run_lint
from repro.lint.output import FORMATS, render
from repro.lint.rules import all_graph_rules, all_rules, rule_catalog
from repro.lint.rules.wholeprogram import EXCEPTIONS_DOC, render_exceptions_md


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter for the repro codebase")
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: [tool.repro-lint] paths)")
    parser.add_argument(
        "--root", default=".",
        help="repository root holding pyproject.toml (default: cwd)")
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="fmt",
        help="output format (default: text)")
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run exclusively")
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip (adds to config ignore)")
    parser.add_argument(
        "--baseline", default=None,
        help="baseline file (default: [tool.repro-lint] baseline)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings as the new baseline and exit 0")
    parser.add_argument(
        "--strict-baseline", action="store_true",
        help="also fail (exit 1) when the baseline has stale entries")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse/summarize N files in parallel processes (default: 1)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the .lint-cache/ summary cache entirely")
    parser.add_argument(
        "--changed-only", action="store_true",
        help="with a warm cache: re-analyze only changed modules plus "
             "their reverse import dependencies")
    parser.add_argument(
        "--no-whole-program", action="store_true",
        help="skip phase 2 (call-graph rules); per-file rules only")
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="fail (exit 1) when the analyzer wall time exceeds S seconds")
    parser.add_argument(
        "--write-exceptions", action="store_true",
        help=f"regenerate {EXCEPTIONS_DOC} from the call graph and exit")
    return parser


def _split_ids(raw: str | None) -> set[str] | None:
    if raw is None:
        return None
    return {part.strip() for part in raw.split(",") if part.strip()}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for entry in rule_catalog():
            print(f"{entry['id']}  {entry['name']} [{entry['scope']}]: "
                  f"{entry['invariant']}")
        return 0

    try:
        config = load_config(Path(args.root))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.baseline is not None:
        config.baseline = args.baseline
    if args.no_baseline:
        config.baseline = None
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    select = _split_ids(args.select)
    ignore = (config.ignored() | (_split_ids(args.ignore) or set()))
    rules = all_rules(select=select, ignore=ignore)
    whole_program = not args.no_whole_program
    graph_rules = (all_graph_rules(select=select, ignore=ignore)
                   if whole_program else [])
    if not rules and not graph_rules:
        print("error: no rules selected", file=sys.stderr)
        return 2

    cache = None if args.no_cache else SummaryCache(config.root)

    start = time.perf_counter()
    result = run_lint(paths=args.paths or None, config=config, rules=rules,
                      graph_rules=graph_rules,
                      whole_program=whole_program and bool(graph_rules),
                      cache=cache, jobs=args.jobs,
                      changed_only=args.changed_only)
    elapsed = time.perf_counter() - start

    if args.write_exceptions:
        if result.project is None:
            print("error: no modules analyzed; cannot generate "
                  f"{EXCEPTIONS_DOC}", file=sys.stderr)
            return 2
        target = config.root / EXCEPTIONS_DOC
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(render_exceptions_md(result.project),
                          encoding="utf-8")
        print(f"wrote {target}")
        return 0

    if args.write_baseline:
        target = config.baseline_path()
        if target is None:
            print("error: --write-baseline needs a baseline path "
                  "(--baseline or [tool.repro-lint] baseline)",
                  file=sys.stderr)
            return 2
        # findings here are the ones NOT already baselined; merge both
        # sets so regeneration is stable.
        write_baseline(target, result.findings + result.baselined)
        print(f"wrote {len(result.findings) + len(result.baselined)} "
              f"entries to {target}")
        return 0

    print(render(result, args.fmt))
    print(f"analyzer wall time: {elapsed:.2f}s"
          + (f" (limit {args.max_seconds:.0f}s)"
             if args.max_seconds is not None else ""),
          file=sys.stderr)
    if result.findings:
        return 1
    if args.strict_baseline and result.stale_baseline:
        return 1
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"error: analyzer wall time {elapsed:.2f}s exceeded "
              f"--max-seconds {args.max_seconds:.0f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
