"""CLI entry point: ``python -m repro.lint [paths...]``.

Exit codes: 0 clean, 1 findings (or stale baseline entries under
``--strict-baseline``), 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import write_baseline
from repro.lint.config import load_config
from repro.lint.engine import run_lint
from repro.lint.output import FORMATS, render
from repro.lint.rules import all_rules, rule_catalog


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter for the repro codebase")
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: [tool.repro-lint] paths)")
    parser.add_argument(
        "--root", default=".",
        help="repository root holding pyproject.toml (default: cwd)")
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="fmt",
        help="output format (default: text)")
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run exclusively")
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip (adds to config ignore)")
    parser.add_argument(
        "--baseline", default=None,
        help="baseline file (default: [tool.repro-lint] baseline)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings as the new baseline and exit 0")
    parser.add_argument(
        "--strict-baseline", action="store_true",
        help="also fail (exit 1) when the baseline has stale entries")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    return parser


def _split_ids(raw: str | None) -> set[str] | None:
    if raw is None:
        return None
    return {part.strip() for part in raw.split(",") if part.strip()}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for entry in rule_catalog():
            print(f"{entry['id']}  {entry['name']}: {entry['invariant']}")
        return 0

    try:
        config = load_config(Path(args.root))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.baseline is not None:
        config.baseline = args.baseline
    if args.no_baseline:
        config.baseline = None

    select = _split_ids(args.select)
    ignore = (config.ignored() | (_split_ids(args.ignore) or set()))
    rules = all_rules(select=select, ignore=ignore)
    if not rules:
        print("error: no rules selected", file=sys.stderr)
        return 2

    result = run_lint(paths=args.paths or None, config=config, rules=rules)

    if args.write_baseline:
        target = config.baseline_path()
        if target is None:
            print("error: --write-baseline needs a baseline path "
                  "(--baseline or [tool.repro-lint] baseline)",
                  file=sys.stderr)
            return 2
        # findings here are the ones NOT already baselined; merge both
        # sets so regeneration is stable.
        write_baseline(target, result.findings + result.baselined)
        print(f"wrote {len(result.findings) + len(result.baselined)} "
              f"entries to {target}")
        return 0

    print(render(result, args.fmt))
    if result.findings:
        return 1
    if args.strict_baseline and result.stale_baseline:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
