"""Error-taxonomy discipline: failures stay typed and visible.

PR 1 introduced the :class:`~repro.reliability.errors.ReproError`
taxonomy so the degradation policy can tell a routing failure from a
simulation failure and retry/skip/abort accordingly.  Two ways code
drifts out of it:

* a handler *swallows* — ``except:`` or ``except Exception:`` with no
  re-raise — and a failure the policy should have counted vanishes;
* stage code raises an untyped operational error (``RuntimeError``,
  bare ``Exception``), which the policy cannot attribute to a stage.

Contract violations (``ValueError`` on a bad argument, ``KeyError`` on
a bad lookup, ``NotImplementedError``) are *programmer* errors, not
pipeline failures, and stay builtin — the taxonomy is for failures the
degradation policy is meant to survive.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import (
    FileContext,
    Rule,
    walk_excluding_nested_scopes,
)

#: Packages whose raises must stay inside the taxonomy (stage code the
#: degradation policy supervises).
STAGE_PACKAGES = ("repro.core", "repro.router",
                  "repro.extraction", "repro.simulation", "repro.serve",
                  "repro.io")

#: The ReproError taxonomy (see repro/reliability/errors.py).
TAXONOMY = frozenset({
    "ReproError", "RoutingError", "ExtractionError", "SimulationError",
    "RelaxationError", "DataQualityError", "CheckpointError", "ServeError",
    "ServeTimeoutError", "IngestError", "SpiceParseError",
})

#: Builtin exceptions signalling caller contract violations — allowed
#: anywhere, because they mark bugs, not survivable pipeline failures.
CONTRACT_ERRORS = frozenset({
    "ValueError", "TypeError", "KeyError", "IndexError",
    "NotImplementedError", "AssertionError", "StopIteration",
})


def _catches_broad(handler: ast.ExceptHandler) -> tuple[bool, str]:
    """Whether the handler catches Exception/BaseException (or is bare)."""
    if handler.type is None:
        return True, "bare `except:`"
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [n.id for n in handler.type.elts if isinstance(n, ast.Name)]
    elif isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    for name in names:
        if name in ("Exception", "BaseException"):
            return True, f"`except {name}`"
    return False, ""


class SwallowedExceptionRule(Rule):
    """EXC001: broad handlers must re-raise (usually as a ReproError)."""

    id = "EXC001"
    name = "swallowed-exception"
    invariant = ("no failure disappears: every broad handler re-raises, "
                 "normally wrapped into the ReproError taxonomy with "
                 "stage context")

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: FileContext) -> None:
        broad, label = _catches_broad(node)
        if not broad:
            return
        for child in walk_excluding_nested_scopes(node.body):
            if isinstance(child, ast.Raise):
                return
        ctx.report(self, node, (
            f"{label} swallows the failure — re-raise, normally wrapped "
            "into a ReproError subclass with stage context, so the "
            "degradation policy can count and attribute it"))


class UntypedStageRaiseRule(Rule):
    """EXC002: stage code raises taxonomy or contract errors only."""

    id = "EXC002"
    name = "untyped-stage-raise"
    invariant = ("core/router/extraction/simulation raise ReproError "
                 "subclasses for pipeline failures (contract violations "
                 "stay builtin), so degradation can attribute every "
                 "failure to a stage")

    def visit_Raise(self, node: ast.Raise, ctx: FileContext) -> None:
        if not ctx.in_package(*STAGE_PACKAGES):
            return
        exc = node.exc
        if exc is None or isinstance(exc, ast.Name):
            return  # re-raise of the active or a captured exception
        if not isinstance(exc, ast.Call):
            return
        func = exc.func
        if isinstance(func, ast.Attribute):
            return  # method call on an exception object (with_context)
        if not isinstance(func, ast.Name):
            return
        name = func.id
        if name in TAXONOMY or name in CONTRACT_ERRORS:
            return
        if name == "error_for_stage":
            return  # taxonomy factory from repro.reliability.errors
        ctx.report(self, node, (
            f"stage code raises `{name}` — raise a ReproError subclass "
            "(RoutingError/ExtractionError/SimulationError/… or "
            "error_for_stage(stage)) so the degradation policy can "
            "attribute the failure; builtin contract errors "
            "(ValueError, TypeError, KeyError, …) are exempt"))
