"""Clock discipline: durations come from ``perf_counter``, nothing else.

Every span, stage timer, and relaxation-trace duration in this repo is
measured on the monotonic ``time.perf_counter`` clock (via the
``obs.span``/``perf.timing`` helpers).  A wall clock (``time.time``,
``datetime.now``) mixed into a timed path makes durations jump on NTP
steps and DST, and breaks the trace/manifest agreement tests.  Wall
clocks are legitimate only for human-facing timestamps (the run
manifest's ``created_unix``) — those sites carry an inline suppression
stating exactly that.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import FileContext, Rule

_WALL_CLOCKS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.clock": "time.clock()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


class WallClockRule(Rule):
    """CLK001: no wall-clock reads; time with ``perf_counter`` helpers."""

    id = "CLK001"
    name = "wall-clock"
    invariant = ("all durations are measured on time.perf_counter via the "
                 "obs.span / perf.timing helpers; wall clocks only stamp "
                 "human-facing metadata, under an explicit suppression")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        qualname = ctx.qualified_name(node.func)
        if qualname is None:
            return
        label = _WALL_CLOCKS.get(qualname)
        if label is None:
            return
        ctx.report(self, node, (
            f"wall-clock read `{label}` — time code with obs.span()/"
            "StageTimer (perf_counter) instead; if this is a deliberate "
            "human-facing timestamp, suppress with "
            "`# repro-lint: disable=CLK001 -- <why>`"))
