"""Rule base class and the per-file context rules see.

A rule is a stateless visitor: it declares ``visit_<NodeType>`` methods
and the engine dispatches matching nodes from ONE shared walk of each
file's AST — adding a rule never adds a parse or a traversal.  Rules
report through :meth:`FileContext.report`; suppression and baseline
filtering happen downstream in the engine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding


class FileContext:
    """Everything a rule may ask about the file under analysis.

    Attributes:
        rel_path: repo-relative POSIX path.
        module: dotted module name (``repro.core.dataset``) when the
            file lies under a recognized package root, else ``None``.
        source_lines: the file's source, split into lines.
        imports: local name -> dotted origin, built from the file's
            import statements (``np`` -> ``numpy``, and ``datetime``
            -> ``datetime.datetime`` after ``from datetime import
            datetime``).
        parent_stack: ancestors of the node currently being visited,
            outermost first (the direct parent is ``parent_stack[-1]``).
    """

    def __init__(self, rel_path: str, source: str,
                 module: str | None = None) -> None:
        self.rel_path = rel_path
        self.module = module
        self.source_lines = source.splitlines()
        self.imports: dict[str, str] = {}
        self.parent_stack: list[ast.AST] = []
        self.findings: list[Finding] = []

    # -- queries ----------------------------------------------------------------------

    def in_package(self, *packages: str) -> bool:
        """Whether this file's module lies under any of ``packages``."""
        if self.module is None:
            return False
        return any(self.module == pkg or self.module.startswith(pkg + ".")
                   for pkg in packages)

    def qualified_name(self, node: ast.AST) -> str | None:
        """Resolve an attribute/name chain through the import table.

        ``np.random.rand`` resolves to ``numpy.random.rand`` after
        ``import numpy as np``; a chain rooted at a non-imported name
        (``self.obs.counter``) resolves to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.imports.get(node.id)
        if origin is None:
            return None
        return ".".join([origin, *reversed(parts)]) if parts else origin

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    # -- reporting --------------------------------------------------------------------

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        self.findings.append(Finding(
            path=self.rel_path, line=line, col=col, rule_id=rule.id,
            message=message, line_text=self.line_text(line)))

    # -- import table (filled by the engine's pre-pass) -------------------------------

    def record_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports don't resolve statically
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"


class Rule:
    """Base class: subclass, set the metadata, add ``visit_*`` methods.

    Attributes:
        id: stable rule id used in suppressions and baselines.
        name: short kebab-case label.
        invariant: one-line statement of what the rule protects.
    """

    id = ""
    name = ""
    invariant = ""

    def visitors(self) -> Iterator[tuple[type[ast.AST], str]]:
        """Yield (node type, method name) pairs this rule handles."""
        for attr in dir(self):
            if not attr.startswith("visit_"):
                continue
            node_type = getattr(ast, attr[len("visit_"):], None)
            if isinstance(node_type, type) and issubclass(node_type, ast.AST):
                yield node_type, attr


def walk_excluding_nested_scopes(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/class scopes.

    Used by rules asking "does THIS block do X" (e.g. re-raise), where
    a nested function doing X on some later call does not count.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
