"""Rule registry: every shipped rule, in catalog order.

Adding a rule = writing a :class:`~repro.lint.rules.base.Rule` subclass
with ``visit_*`` methods and appending it to :data:`ALL_RULES`; the
engine dispatches it from the existing single walk, and
``tests/test_lint_repo.py`` will demand a bad/good fixture pair for it.
"""

from __future__ import annotations

from repro.lint.rules.base import FileContext, Rule
from repro.lint.rules.clock import WallClockRule
from repro.lint.rules.errors import SwallowedExceptionRule, UntypedStageRaiseRule
from repro.lint.rules.naming import MetricNameRule, SpanNameRule
from repro.lint.rules.numeric import (
    CachedMethodRule,
    FloatEqualityRule,
    MutableDefaultRule,
)
from repro.lint.rules.rng import NumpyGlobalRngRule, StdlibRandomRule
from repro.lint.rules.wholeprogram import (
    GRAPH_RULES,
    GraphRule,
    all_graph_rules,
)

ALL_RULES: tuple[type[Rule], ...] = (
    NumpyGlobalRngRule,
    StdlibRandomRule,
    WallClockRule,
    SwallowedExceptionRule,
    UntypedStageRaiseRule,
    MetricNameRule,
    SpanNameRule,
    FloatEqualityRule,
    MutableDefaultRule,
    CachedMethodRule,
)


def all_rules(select: set[str] | None = None,
              ignore: set[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules, honoring select/ignore id sets."""
    select = {s.upper() for s in select} if select else None
    ignore = {s.upper() for s in ignore} if ignore else set()
    rules = []
    for rule_cls in ALL_RULES:
        if select is not None and rule_cls.id not in select:
            continue
        if rule_cls.id in ignore:
            continue
        rules.append(rule_cls())
    return rules


def rule_catalog() -> list[dict[str, str]]:
    """Id/name/invariant of every registered rule (for --list-rules).

    Covers both the per-file rules and the whole-program (call-graph)
    rules; the latter are marked with ``scope: project``.
    """
    catalog = [{"id": cls.id, "name": cls.name, "invariant": cls.invariant,
                "scope": "file"}
               for cls in ALL_RULES]
    catalog.extend(
        {"id": cls.id, "name": cls.name, "invariant": cls.invariant,
         "scope": "project"}
        for cls in GRAPH_RULES)
    return catalog


__all__ = [
    "ALL_RULES",
    "GRAPH_RULES",
    "FileContext",
    "GraphRule",
    "Rule",
    "all_graph_rules",
    "all_rules",
    "rule_catalog",
]
