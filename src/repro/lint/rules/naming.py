"""Observability naming: metric and span names follow the locked schemes.

The golden fixtures (tests/golden/) lock the *shapes* of traces and
manifests; these rules lock the *names* flowing into them:

* metrics are ``snake_case``; a **labelled counter** ends in ``_total``
  (``retry_total{stage=...}``), and gauges/histograms never do;
* span names are dotted lowercase segments (``dataset.sample``,
  ``stage.guided_routing``);
* both must be string literals at the call site — a computed name
  cannot be audited statically and invites unbounded cardinality.

The rules check instrumentation *call sites* (``obs.counter(...)``,
``ctx.span(...)``); the ``repro.obs`` package itself is exempt, since
the registry/context implementation forwards caller-supplied names
through parameters by design.
"""

from __future__ import annotations

import ast
import re

from repro.lint.rules.base import FileContext, Rule

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})
_SPAN_METHODS = frozenset({"span", "emit_span"})

_METRIC_NAME = re.compile(r"^[a-z][a-z0-9]*(_[a-z0-9]+)*$")
_LABEL_KEY = re.compile(r"^[a-z][a-z0-9_]*$")
_SPAN_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")


def _instrumentation_call(node: ast.Call, ctx: FileContext,
                          methods: frozenset[str]) -> str | None:
    """The method name when ``node`` looks like an instrumentation call.

    Requires an attribute call (``something.counter(...)``) whose
    receiver is NOT a resolvable imported module — that distinction
    keeps ``np.histogram(...)`` out of scope while catching every
    ``obs``/``ctx``/``self.obs`` call site.
    """
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in methods:
        return None
    if ctx.qualified_name(func) is not None:
        return None
    return func.attr


class MetricNameRule(Rule):
    """OBS001: metric names are snake_case; labelled counters end _total."""

    id = "OBS001"
    name = "metric-naming"
    invariant = ("metric names match the noun_total{label=...} scheme the "
                 "manifest golden fixtures lock: snake_case, labelled "
                 "counters end in _total, gauges/histograms never do")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.in_package("repro.obs"):
            return
        method = _instrumentation_call(node, ctx, _METRIC_METHODS)
        if method is None or not node.args:
            return
        name_node = node.args[0]
        if not (isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)):
            ctx.report(self, node, (
                f".{method}() name must be a string literal — computed "
                "metric names defeat static auditing and invite "
                "unbounded cardinality"))
            return
        name = name_node.value
        if not _METRIC_NAME.match(name):
            ctx.report(self, node, (
                f"metric name {name!r} is not snake_case "
                "(expected e.g. `samples_valid`, `retry_total`)"))
            return
        labelled = bool(node.keywords)
        if method == "counter" and labelled and not name.endswith("_total"):
            ctx.report(self, node, (
                f"labelled counter {name!r} must end in `_total` "
                "(scheme: noun_total{{label=...}}, like retry_total)"))
        elif method != "counter" and name.endswith("_total"):
            ctx.report(self, node, (
                f"{method} name {name!r} ends in `_total`, which is "
                "reserved for counters"))
        for keyword in node.keywords:
            if keyword.arg is not None and not _LABEL_KEY.match(keyword.arg):
                ctx.report(self, node, (
                    f"label key {keyword.arg!r} on metric {name!r} is "
                    "not snake_case"))


class SpanNameRule(Rule):
    """OBS002: span names are literal dotted lowercase segments."""

    id = "OBS002"
    name = "span-naming"
    invariant = ("span names match the dotted `stage.*`-style scheme the "
                 "trace golden fixtures lock (dataset.sample, route.net, "
                 "stage.guided_routing)")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.in_package("repro.obs"):
            return
        method = _instrumentation_call(node, ctx, _SPAN_METHODS)
        if method is None or not node.args:
            return
        name_node = node.args[0]
        if not (isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)):
            ctx.report(self, node, (
                f".{method}() name must be a string literal — computed "
                "span names defeat static auditing of the trace schema"))
            return
        name = name_node.value
        if not _SPAN_NAME.match(name):
            ctx.report(self, node, (
                f"span name {name!r} does not match the dotted lowercase "
                "scheme (expected e.g. `dataset.sample`, "
                "`stage.guided_routing`)"))
