"""RNG discipline: all randomness flows through seeded Generators.

Bit-identical parallel dataset generation (PR 2) hangs on every random
draw coming from an explicit, per-sample-seeded
``np.random.Generator`` stream.  One call into numpy's *module-level*
global state (``np.random.rand``, ``np.random.seed``, …) or into the
stdlib ``random`` module makes results depend on import order and
worker count, silently breaking the ``--workers`` identity guarantee.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import FileContext, Rule

#: numpy.random attributes that construct explicit generators/seeds —
#: the sanctioned entry points — as opposed to drawing from the hidden
#: module-level global RandomState.
_GENERATOR_FACTORIES = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64",
})


class NumpyGlobalRngRule(Rule):
    """RNG001: no module-level ``np.random.<fn>()`` draws."""

    id = "RNG001"
    name = "numpy-global-rng"
    invariant = ("randomness flows through explicit seeded "
                 "np.random.Generator streams, never numpy's global state")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        qualname = ctx.qualified_name(node.func)
        if qualname is None or not qualname.startswith("numpy.random."):
            return
        fn = qualname.rsplit(".", 1)[-1]
        if fn in _GENERATOR_FACTORIES:
            return
        ctx.report(self, node, (
            f"call to numpy's module-level RNG `{qualname}` — draw from "
            "an explicit seeded np.random.Generator (np.random."
            "default_rng(seed)) so streams stay per-sample and "
            "worker-count independent"))


class StdlibRandomRule(Rule):
    """RNG002: the stdlib ``random`` module is banned outright."""

    id = "RNG002"
    name = "stdlib-random"
    invariant = ("the stdlib `random` module (global, unseedable per "
                 "sample) never enters the library")

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                ctx.report(self, node, (
                    "import of the stdlib `random` module — use a seeded "
                    "np.random.Generator instead; global RNG state breaks "
                    "parallel bit-identity"))

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.level == 0 and node.module == "random":
            ctx.report(self, node, (
                "import from the stdlib `random` module — use a seeded "
                "np.random.Generator instead; global RNG state breaks "
                "parallel bit-identity"))
