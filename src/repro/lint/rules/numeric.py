"""Numeric and API hygiene: float equality, mutable defaults, cached methods.

Three classic correctness traps that have each bitten numerical
codebases like this one:

* ``x == 0.0`` on a computed float is almost always a tolerance bug
  (and when exactness IS intended — a sentinel never touched by
  arithmetic — the site should say so with a suppression);
* a mutable default argument is shared across calls, so one caller's
  mutation leaks into the next — deadly for anything keyed by sample;
* ``functools.lru_cache`` on a method keeps ``self`` alive in the
  cache key forever: a leak, and a stale-result source once the object
  mutates (the perf layer's ForwardCacheStore exists precisely to do
  this correctly with weakrefs + fingerprints).
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import FileContext, Rule


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class FloatEqualityRule(Rule):
    """NUM001: no ``==``/``!=`` against float literals."""

    id = "NUM001"
    name = "float-equality"
    invariant = ("computed floats are compared with tolerances "
                 "(math.isclose / np.isclose / an explicit epsilon), "
                 "never `==` against a float literal")

    def visit_Compare(self, node: ast.Compare, ctx: FileContext) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                ctx.report(self, node, (
                    "float literal compared with ==/!= — use a tolerance "
                    "(abs(x - y) < eps, math.isclose, np.isclose); if "
                    "exact equality is the intent, suppress with a "
                    "comment saying why"))
                return


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CONSTRUCTORS)


class MutableDefaultRule(Rule):
    """NUM002: no mutable default arguments."""

    id = "NUM002"
    name = "mutable-default"
    invariant = ("default arguments are immutable; per-call state uses "
                 "`None` plus an in-body constructor (or a dataclass "
                 "default_factory)")

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
               ctx: FileContext) -> None:
        defaults = [*node.args.defaults,
                    *[d for d in node.args.kw_defaults if d is not None]]
        for default in defaults:
            if _is_mutable_default(default):
                ctx.report(self, default, (
                    f"mutable default argument in `{node.name}()` is "
                    "shared across every call — default to None and "
                    "construct inside the body"))

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: FileContext) -> None:
        self._check(node, ctx)


_CACHE_DECORATORS = frozenset({
    "functools.lru_cache", "functools.cache", "functools.cached_property",
})
_CACHE_BARE_NAMES = frozenset({"lru_cache", "cache"})


class CachedMethodRule(Rule):
    """NUM003: no ``lru_cache``/``cache`` on instance methods."""

    id = "NUM003"
    name = "cached-method"
    invariant = ("method results are never memoized through lru_cache "
                 "(it pins self in the cache key: a leak plus stale "
                 "results after mutation) — use ForwardCacheStore-style "
                 "weakref caches instead")

    def _decorator_name(self, node: ast.expr,
                        ctx: FileContext) -> str | None:
        if isinstance(node, ast.Call):
            node = node.func
        qualname = ctx.qualified_name(node)
        if qualname is not None:
            return qualname if qualname in _CACHE_DECORATORS else None
        if isinstance(node, ast.Name) and node.id in _CACHE_BARE_NAMES:
            # Covers `from functools import lru_cache` re-exported under
            # the same name even when the import table missed it.
            return node.id
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: FileContext) -> None:
        if not ctx.parent_stack or not isinstance(ctx.parent_stack[-1],
                                                  ast.ClassDef):
            return
        args = node.args.posonlyargs + node.args.args
        if not args or args[0].arg not in ("self", "cls"):
            return  # staticmethod-style: caching is fine
        for decorator in node.decorator_list:
            name = self._decorator_name(decorator, ctx)
            if name is not None and "cached_property" not in name:
                ctx.report(self, decorator, (
                    f"`{name}` on method `{node.name}` keeps self alive "
                    "in the cache key (leak + stale results after "
                    "mutation) — cache per-instance state explicitly, "
                    "e.g. a weakref keyed store like perf.cache"))
