"""Phase 1 of the whole-program analyzer: per-module summaries.

A :class:`ModuleSummary` is everything phase 2 (the call-graph linker,
:mod:`repro.lint.callgraph`) needs to know about one file — defined
functions and classes, the import/alias table, every call site, and the
"events" the interprocedural rules care about (module-state mutations,
non-injected RNG draws, tape operations, dtype coercions, raised
exception types).  Summaries are plain dataclasses with a lossless
JSON round-trip so :mod:`repro.lint.cache` can persist them keyed by
file content hash and re-summarize only modules that changed.

One summary is produced by ONE extra walk of the same AST the per-file
rules already share, so the whole-program pass adds no parse.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any

#: Bump on any change to the summary dataclasses or the extraction
#: logic — cached summaries from another version are discarded.
SUMMARY_SCHEMA_VERSION = 1

#: Methods that mutate their receiver in place.  A call
#: ``X.<method>(...)`` where ``X`` resolves to a *module-level* name is
#: recorded as a module-state mutation candidate.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
    "appendleft", "popleft", "extendleft", "rotate",
})

#: numpy.random generator/seed constructors that are deterministic
#: *only* when given an explicit seed argument.
_SEEDABLE_FACTORIES = frozenset({
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
})

#: Callables that are nondeterministic by construction — any reachable
#: use inside a worker breaks bit-identity across worker counts.
_ENTROPY_SOURCES = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice", "secrets.randbits",
})


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    Attributes:
        line: 1-based source line of the call.
        chain: dotted attribute chain when the call is rooted at a plain
            name (``service.submit``, ``np.asarray``, ``helper``);
            ``None`` when the root is itself an expression
            (``Clock().time()``).
        attr: final attribute for chains of length >= 2 and for
            non-name-rooted attribute calls — the hook for name-based
            method matching when the chain does not resolve.
        in_no_grad: the call is lexically inside a ``with no_grad():``
            block of this function (tape-free region, see TAPE001).
    """

    line: int
    chain: str | None
    attr: str | None
    in_no_grad: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {"line": self.line, "chain": self.chain, "attr": self.attr,
                "in_no_grad": self.in_no_grad}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "CallSite":
        return CallSite(line=data["line"], chain=data["chain"],
                        attr=data["attr"],
                        in_no_grad=data.get("in_no_grad", False))


@dataclass(frozen=True)
class Event:
    """One rule-relevant operation observed inside a function.

    Kinds: ``global-mutation`` (detail = dotted module-level target),
    ``unseeded-rng`` / ``entropy`` / ``global-rng`` (detail = qualname),
    ``backward`` / ``requires-grad`` (tape operations; ``in_no_grad``
    marks ones already inside a tape-free region), ``float64-coercion``
    (detail = offending expression sketch), ``raise`` (detail = raw
    exception name chain or ``error_for_stage:<stage literal>``).
    """

    kind: str
    line: int
    detail: str = ""
    in_no_grad: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "line": self.line, "detail": self.detail,
                "in_no_grad": self.in_no_grad}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Event":
        return Event(kind=data["kind"], line=data["line"],
                     detail=data.get("detail", ""),
                     in_no_grad=data.get("in_no_grad", False))


@dataclass
class FunctionSummary:
    """Summary of one function or method.

    Attributes:
        qualpath: module-local dotted path (``worker_main``,
            ``ScoringService.submit``, ``outer.inner``).
        name: bare function name.
        line: 1-based ``def`` line.
        cls: enclosing class name when this is a method, else ``None``.
        calls: every call site in the body (nested defs excluded — they
            get their own summaries).
        events: rule-relevant operations (see :class:`Event`).
        arg_types: parameter name -> identifiers appearing in its
            annotation (``registry: ModelRegistry`` -> ``["ModelRegistry"]``).
        local_types: local variable -> call chain it was assigned from
            (``service = _build_service(...)`` -> ``"_build_service"``) —
            the linker turns constructor calls and annotated returns
            into receiver types.
        return_type: identifiers appearing in the return annotation.
    """

    qualpath: str
    name: str
    line: int
    cls: str | None = None
    calls: list[CallSite] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)
    arg_types: dict[str, list[str]] = field(default_factory=dict)
    local_types: dict[str, str] = field(default_factory=dict)
    return_type: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualpath": self.qualpath, "name": self.name, "line": self.line,
            "cls": self.cls,
            "calls": [c.to_dict() for c in self.calls],
            "events": [e.to_dict() for e in self.events],
            "arg_types": self.arg_types,
            "local_types": self.local_types,
            "return_type": self.return_type,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "FunctionSummary":
        return FunctionSummary(
            qualpath=data["qualpath"], name=data["name"], line=data["line"],
            cls=data.get("cls"),
            calls=[CallSite.from_dict(c) for c in data.get("calls", [])],
            events=[Event.from_dict(e) for e in data.get("events", [])],
            arg_types={k: list(v)
                       for k, v in data.get("arg_types", {}).items()},
            local_types=dict(data.get("local_types", {})),
            return_type=list(data.get("return_type", [])),
        )


@dataclass
class ClassSummary:
    """Summary of one class: bases, methods, annotated fields."""

    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    fields: dict[str, list[str]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "line": self.line, "bases": self.bases,
                "methods": self.methods, "fields": self.fields}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ClassSummary":
        return ClassSummary(
            name=data["name"], line=data["line"],
            bases=list(data.get("bases", [])),
            methods=list(data.get("methods", [])),
            fields={k: list(v) for k, v in data.get("fields", {}).items()})


@dataclass
class ModuleSummary:
    """Everything phase 2 needs to know about one module."""

    module: str
    rel_path: str
    digest: str = ""
    imports: dict[str, str] = field(default_factory=dict)
    star_imports: list[str] = field(default_factory=list)
    module_names: list[str] = field(default_factory=list)
    exports: list[str] = field(default_factory=list)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module, "rel_path": self.rel_path,
            "digest": self.digest, "imports": self.imports,
            "star_imports": self.star_imports,
            "module_names": self.module_names, "exports": self.exports,
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ModuleSummary":
        return ModuleSummary(
            module=data["module"], rel_path=data["rel_path"],
            digest=data.get("digest", ""),
            imports=dict(data.get("imports", {})),
            star_imports=list(data.get("star_imports", [])),
            module_names=list(data.get("module_names", [])),
            exports=list(data.get("exports", [])),
            functions={k: FunctionSummary.from_dict(f)
                       for k, f in data.get("functions", {}).items()},
            classes={k: ClassSummary.from_dict(c)
                     for k, c in data.get("classes", {}).items()})


# -- extraction -----------------------------------------------------------------------


def _chain_of(node: ast.expr) -> tuple[str | None, str | None]:
    """(dotted chain from a Name root, final attribute) of a call target."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain = ".".join([node.id, *reversed(parts)])
        return chain, (parts[0] if parts else None)
    return None, (parts[0] if parts else None)


def _annotation_names(node: ast.expr | None) -> list[str]:
    """Identifier chains appearing in an annotation, longest first.

    ``Gnn3d | None`` -> ``["Gnn3d", "None"]``; ``dict[str, _Endpoint]``
    -> ``["_Endpoint", "dict", "str"]``; a string annotation is parsed.
    """
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Attribute, ast.Name)):
            chain, _attr = _chain_of(sub)
            if chain is not None and chain not in names:
                names.append(chain)
    names.sort(key=lambda chain: (-len(chain), chain))
    return names


class _ModuleVisitor(ast.NodeVisitor):
    """One walk of a module AST producing its :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary) -> None:
        self.summary = summary
        self._class_stack: list[str] = []
        self._func_stack: list[FunctionSummary] = []
        self._locals_stack: list[set[str]] = []
        self._globals_stack: list[set[str]] = []
        self._no_grad_depth = 0
        # Calls executed at import time belong to a pseudo-function.
        module_fn = summary.functions.get("<module>")
        if module_fn is None:
            module_fn = FunctionSummary(
                qualpath="<module>", name="<module>", line=1)
            summary.functions["<module>"] = module_fn
        self._module_fn = module_fn

    # -- helpers ------------------------------------------------------------------

    @property
    def _fn(self) -> FunctionSummary:
        return self._func_stack[-1] if self._func_stack else self._module_fn

    def _qualified(self, chain: str) -> str | None:
        """Resolve a dotted chain's root through the import table."""
        root, _, rest = chain.partition(".")
        origin = self.summary.imports.get(root)
        if origin is None:
            return None
        return f"{origin}.{rest}" if rest else origin

    def _is_local(self, name: str) -> bool:
        return bool(self._locals_stack) and name in self._locals_stack[-1]

    def _declared_global(self, name: str) -> bool:
        return bool(self._globals_stack) and name in self._globals_stack[-1]

    def _bind_local(self, target: ast.expr) -> None:
        if not self._locals_stack:
            return
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                if not self._declared_global(sub.id):
                    self._locals_stack[-1].add(sub.id)

    def _event(self, kind: str, line: int, detail: str = "") -> None:
        self._fn.events.append(Event(
            kind=kind, line=line, detail=detail,
            in_no_grad=self._no_grad_depth > 0))

    def _mutation_root(self, root: str) -> str | None:
        """Dotted module-level target of a mutation rooted at ``root``.

        Local names mutate local state (fine); a module-level name of
        this module resolves to ``<module>.<name>``; an imported name
        resolves through the import table.  Anything else (builtins,
        genuinely unknown globals) returns ``None``.
        """
        if self._is_local(root):
            return None
        if self._declared_global(root) or root in self.summary.module_names:
            return f"{self.summary.module}.{root}"
        return self.summary.imports.get(root)

    # -- scope bookkeeping --------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Decorator expressions evaluate in the enclosing scope.
        for deco in node.decorator_list:
            self.visit(deco)
        prefix = ""
        if self._func_stack:
            prefix = self._func_stack[-1].qualpath + "."
        elif self._class_stack:
            prefix = ".".join(self._class_stack) + "."
        fn = FunctionSummary(
            qualpath=prefix + node.name, name=node.name, line=node.lineno,
            cls=self._class_stack[-1] if self._class_stack else None)
        args = node.args
        local_names: set[str] = set()
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            local_names.add(arg.arg)
            names = _annotation_names(arg.annotation)
            if names:
                fn.arg_types[arg.arg] = names
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                local_names.add(vararg.arg)
        fn.return_type = _annotation_names(node.returns)
        self.summary.functions[fn.qualpath] = fn

        self._func_stack.append(fn)
        self._locals_stack.append(local_names)
        self._globals_stack.append(set())
        prev_no_grad, self._no_grad_depth = self._no_grad_depth, 0
        for default in (*args.defaults,
                        *[d for d in args.kw_defaults if d is not None]):
            self.visit(default)
        for stmt in node.body:
            self.visit(stmt)
        self._no_grad_depth = prev_no_grad
        self._func_stack.pop()
        self._locals_stack.pop()
        self._globals_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for deco in node.decorator_list:
            self.visit(deco)
        cls = ClassSummary(name=node.name, line=node.lineno)
        for base in node.bases:
            chain, _attr = _chain_of(base)
            if chain is not None:
                cls.bases.append(chain)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods.append(stmt.name)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                cls.fields[stmt.target.id] = _annotation_names(
                    stmt.annotation)
        if not self._class_stack and not self._func_stack:
            self.summary.classes[node.name] = cls
        self._class_stack.append(node.name)
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()

    # -- imports ------------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.summary.imports[alias.asname] = alias.name
            else:
                head = alias.name.split(".")[0]
                self.summary.imports[head] = head

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module
        if node.level:
            # Resolve a relative import against this module's package.
            parts = self.summary.module.split(".")
            if not self.summary.rel_path.endswith("__init__.py"):
                parts = parts[:-1]
            parts = parts[: len(parts) - (node.level - 1)]
            if not parts:
                return
            base = ".".join(parts)
            module = f"{base}.{module}" if module else base
        if module is None:
            return
        for alias in node.names:
            if alias.name == "*":
                if module not in self.summary.star_imports:
                    self.summary.star_imports.append(module)
                continue
            local = alias.asname or alias.name
            self.summary.imports[local] = f"{module}.{alias.name}"

    # -- statements ---------------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        if self._globals_stack:
            self._globals_stack[-1].update(node.names)
            for name in node.names:
                self._locals_stack[-1].discard(name)

    def _record_assign_target(self, target: ast.expr, line: int) -> None:
        """Module-state mutation via assignment to X / X.attr / X[k]."""
        if isinstance(target, ast.Name):
            if self._func_stack:
                # Only a declared `global X` rebind is a mutation —
                # a bare `X = v` in a function creates a local.
                if self._declared_global(target.id):
                    self._event("global-mutation", line,
                                f"{self.summary.module}.{target.id}")
                self._bind_local(target)
            else:
                if target.id not in self.summary.module_names:
                    self.summary.module_names.append(target.id)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            # The mutated *object* is the chain up to (excluding) the
            # final attribute / the subscripted expression.
            obj = target.value
            chain, _attr = _chain_of(obj)
            if chain is None:
                return
            segments = chain.split(".")
            dotted = self._mutation_root(segments[0])
            if self._func_stack and dotted is not None:
                full = ".".join([dotted, *segments[1:]])
                self._event("global-mutation", line, full)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_assign_target(elt, line)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._record_assign_target(target, node.lineno)
            if not isinstance(target, ast.Name):
                self.generic_visit(target)  # calls inside X[f(i)] = ...
        # Local type inference: `x = Ctor(...)` / `x = fn(...)`.
        if (self._func_stack and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            chain, _attr = _chain_of(node.value.func)
            if chain is not None:
                self._fn.local_types[node.targets[0].id] = chain

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self._record_assign_target(node.target, node.lineno)
        if self._func_stack and isinstance(node.target, ast.Name):
            names = _annotation_names(node.annotation)
            if names:
                self._fn.local_types.setdefault(node.target.id, names[0])

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            if self._func_stack and self._declared_global(node.target.id):
                self._event("global-mutation", node.lineno,
                            f"{self.summary.module}.{node.target.id}")
            return
        self._record_assign_target(node.target, node.lineno)

    def visit_For(self, node: ast.For) -> None:
        self._bind_local(node.target)
        self.generic_visit(node)

    visit_AsyncFor = visit_For  # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        is_no_grad = False
        for item in node.items:
            self.visit(item.context_expr)
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            chain, _attr = _chain_of(expr)
            if chain is not None and chain.split(".")[-1] == "no_grad":
                is_no_grad = True
            if item.optional_vars is not None:
                self._bind_local(item.optional_vars)
        if is_no_grad:
            self._no_grad_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if is_no_grad:
            self._no_grad_depth -= 1

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name and self._locals_stack:
            self._locals_stack[-1].add(node.name)
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            chain, _attr = _chain_of(exc.func)
            if chain is not None:
                if chain.split(".")[-1] == "error_for_stage":
                    stage = ""
                    if exc.args and isinstance(exc.args[0], ast.Constant):
                        stage = str(exc.args[0].value)
                    self._event("raise", node.lineno,
                                f"error_for_stage:{stage}")
                else:
                    self._event("raise", node.lineno, chain)
        elif isinstance(exc, (ast.Name, ast.Attribute)):
            chain, _attr = _chain_of(exc)
            if chain is not None and not self._is_local(chain.split(".")[0]):
                self._event("raise", node.lineno, chain)
        self.generic_visit(node)

    # -- calls and events ---------------------------------------------------------

    def _rng_event(self, node: ast.Call, qualified: str) -> None:
        if qualified in _ENTROPY_SOURCES:
            self._event("entropy", node.lineno, qualified)
            return
        if qualified in _SEEDABLE_FACTORIES:
            if not node.args and not node.keywords:
                self._event("unseeded-rng", node.lineno, qualified)
            return
        if qualified.startswith("numpy.random."):
            # Module-level global-state draw (RNG001's territory, but
            # recorded so WRK002 can attribute it to a worker path).
            self._event("global-rng", node.lineno, qualified)

    def _dtype_is_float64(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return node.value in ("float64", "f8", "d")
        if isinstance(node, ast.Name):
            return node.id == "float"
        chain, _attr = _chain_of(node)
        if chain is None:
            return False
        qualified = self._qualified(chain) or chain
        return qualified in ("numpy.float64", "numpy.double")

    def visit_Call(self, node: ast.Call) -> None:
        chain, attr = _chain_of(node.func)
        self._fn.calls.append(CallSite(
            line=node.lineno, chain=chain, attr=attr,
            in_no_grad=self._no_grad_depth > 0))

        # -- events keyed on the callee -----------------------------------
        if chain is not None:
            qualified = self._qualified(chain) or chain
            self._rng_event(node, qualified)
            if qualified in ("numpy.float64", "numpy.double"):
                self._event("float64-coercion", node.lineno, f"{chain}(...)")
            if attr in MUTATING_METHODS and "." in chain:
                segments = chain.split(".")
                dotted = self._mutation_root(segments[0])
                if self._func_stack and dotted is not None:
                    full = ".".join([dotted, *segments[1:-1]])
                    self._event("global-mutation", node.lineno, full)
        if attr == "backward":
            self._event("backward", node.lineno, ".backward()")
        if attr == "astype" and node.args and self._dtype_is_float64(
                node.args[0]):
            self._event("float64-coercion", node.lineno, ".astype(float64)")

        # -- keyword-carried events ----------------------------------------
        for keyword in node.keywords:
            if keyword.arg == "requires_grad":
                if (isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True):
                    self._event("requires-grad", node.lineno,
                                "requires_grad=True")
            elif keyword.arg == "dtype":
                if self._dtype_is_float64(keyword.value):
                    self._event("float64-coercion", node.lineno,
                                "dtype=float64")
        self.generic_visit(node)


def _collect_module_names(tree: ast.Module, summary: ModuleSummary) -> None:
    """Pre-pass: module-level names, so function bodies that appear
    *before* a module-level assignment still resolve mutations of it."""
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            if stmt.name not in summary.module_names:
                summary.module_names.append(stmt.name)
            continue
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    if sub.id not in summary.module_names:
                        summary.module_names.append(sub.id)


def _collect_exports(tree: ast.Module, summary: ModuleSummary) -> None:
    """Record ``__all__`` string entries as the module's public exports."""
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in stmt.targets):
            continue
        if isinstance(stmt.value, (ast.List, ast.Tuple)):
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str):
                    if elt.value not in summary.exports:
                        summary.exports.append(elt.value)


def summarize_module(tree: ast.Module, module: str, rel_path: str,
                     digest: str = "") -> ModuleSummary:
    """Produce the :class:`ModuleSummary` of one parsed module."""
    summary = ModuleSummary(module=module, rel_path=rel_path, digest=digest)
    _collect_module_names(tree, summary)
    _collect_exports(tree, summary)
    visitor = _ModuleVisitor(summary)
    # Imports go on the table first (including function-local ones, to
    # match FileContext.record_imports): bodies that call through an
    # alias textually above its import still resolve.
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            visitor.visit_Import(node)
        elif isinstance(node, ast.ImportFrom):
            visitor.visit_ImportFrom(node)
    for stmt in tree.body:
        visitor.visit(stmt)
    return summary
