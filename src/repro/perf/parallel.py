"""Process-pool execution of database construction.

Database samples are embarrassingly parallel — each one routes, extracts,
and simulates an independent guidance draw — but *bit-identical* parallel
output takes care:

* every sample's inputs are computed up front from deterministic RNG
  streams (the base guidance sequence, per-``(sample, attempt)`` retry
  perturbations, and a dedicated resample stream consumed by the parent
  in failure-discovery order), so no RNG state ever crosses a process
  boundary;
* workers run the *same* ``attempt_sample`` code path as serial mode and
  return typed outcomes (sample / failure / retry counts); the parent
  applies the degradation policy, so retry/skip-and-resample decisions
  are made exactly once, in the same order as a serial run;
* fault-injection plans active in the parent are re-installed in each
  worker, and unit-scoped selection (:func:`repro.reliability.faults.
  fault_scope`) addresses faults by sample index rather than process-local
  call order, keeping injected failures identical across worker counts.

The parent consumes futures in submission order, so checkpoint lines are
appended in the same order a serial run would write them.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

import multiprocessing

from repro.reliability.faults import FaultInjector, FaultPlan, _ACTIVE

#: Per-worker construction context, installed by :func:`_init_worker`.
_WORKER_CTX: dict[str, Any] | None = None


@dataclass
class ParallelConfig:
    """Knobs of parallel database construction.

    Attributes:
        workers: worker processes; 1 means in-process serial execution.
        start_method: multiprocessing start method; ``None`` picks
            ``fork`` where available (cheap, inherits loaded modules)
            and the platform default elsewhere.
    """

    workers: int = 1
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


def _resolve_context(start_method: str | None):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _init_worker(ctx: dict[str, Any]) -> None:
    """Install the construction context (and fault plans) in a worker."""
    global _WORKER_CTX
    _WORKER_CTX = ctx
    # A fork-started worker inherits the parent's active injectors, whose
    # process-local call counters would diverge from a serial run.  Start
    # clean and install the shipped plans so selection is purely
    # unit-scoped (deterministic regardless of scheduling).
    _ACTIVE.clear()
    plans: tuple[FaultPlan, ...] = ctx.get("fault_plans", ())
    if plans:
        FaultInjector(*plans).__enter__()  # active for the worker's lifetime


def _worker_run(task: tuple[int, Any]):
    """Run one sample attempt inside a worker process.

    When the parent's observability context is enabled, the attempt
    records spans into a per-worker in-memory context; the buffered
    records ride back on the outcome and the parent absorbs them in
    submission order, keeping traces identical across worker counts.
    """
    from repro.core.dataset import attempt_sample
    from repro.obs import RunContext

    assert _WORKER_CTX is not None, "worker used before initialization"
    index, guidance = task
    c = _WORKER_CTX
    obs = RunContext.recording() if c.get("obs_enabled") else None
    return attempt_sample(
        c["circuit"], c["placement"], c["tech"], guidance, index,
        c["config"], c["policy"], c["router_config"], c["testbench_config"],
        obs=obs,
    )


#: Per-worker routing context, installed by :func:`_init_net_worker`.
_NET_CTX: dict[str, Any] | None = None


def _init_net_worker(ctx: dict[str, Any]) -> None:
    """Build the worker's private router over the shipped grid."""
    global _NET_CTX
    from repro.router.iterative import IterativeRouter

    router = IterativeRouter(ctx["grid"], ctx["guidance"], ctx["config"])
    _NET_CTX = {"router": router}


def _net_worker_run(task: tuple[str, Any, Any]):
    """Speculatively route one net against a snapshot grid state."""
    assert _NET_CTX is not None, "worker used before initialization"
    net_name, occupancy, history = task
    return _NET_CTX["router"].speculate_net(net_name, occupancy, history)


class NetPool:
    """A process pool that speculatively routes nets of one grid.

    Used by :meth:`repro.router.iterative.IterativeRouter.route_all` when
    ``RouterConfig.workers > 0``: each rip-up round's nets are routed
    concurrently against a round-start snapshot of occupancy/history, and
    the parent validates each outcome's read set against the cells that
    actually changed by its turn in the committed (serial) merge order —
    so routed paths stay bit-identical to a serial run for any worker
    count.

    Args:
        grid: the routing grid (workers get their own pickled copy).
        guidance: routing guidance shared by all nets.
        config: the router configuration (``workers`` is ignored inside
            workers — they only ever route single nets).
        workers: worker process count.
        start_method: multiprocessing start method (see
            :class:`ParallelConfig`).
    """

    def __init__(self, grid: Any, guidance: Any, config: Any,
                 workers: int, start_method: str | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_resolve_context(start_method),
            initializer=_init_net_worker,
            initargs=({"grid": grid, "guidance": guidance,
                       "config": config},),
        )

    def submit(self, net_name: str, occupancy: Any, history: Any) -> Future:
        """Schedule one net; the future yields a SpeculativeNetOutcome."""
        return self._executor.submit(
            _net_worker_run, (net_name, occupancy, history))

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "NetPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SamplePool:
    """A process pool pre-loaded with one design's construction context.

    Args:
        context: everything a worker needs to attempt a sample —
            circuit, placement, tech, dataset config, degradation policy,
            router/testbench configs, and the active fault plans.
        config: worker-count and start-method knobs.
    """

    def __init__(self, context: dict[str, Any],
                 config: ParallelConfig) -> None:
        self.config = config
        self._executor = ProcessPoolExecutor(
            max_workers=config.workers,
            mp_context=_resolve_context(config.start_method),
            initializer=_init_worker,
            initargs=(context,),
        )

    def submit(self, index: int, guidance: Any) -> Future:
        """Schedule one sample attempt; the future yields its outcome."""
        return self._executor.submit(_worker_run, (index, guidance))

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "SamplePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
