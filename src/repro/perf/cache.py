"""Graph-invariant forward-pass caches for the 3DGNN.

Potential relaxation pays one GNN forward-backward per L-BFGS function
evaluation; everything in that pass that does not depend on the guidance
``C`` is hoisted here and built once per graph:

* the directed edge expansion (also memoized on
  :meth:`repro.graph.hetero.HeteroGraph.directed_edges` itself);
* the static geometry of the Eq. 1 cost-aware distance — the per-edge
  ``|pos[dst] - pos[src]|`` decomposition that guidance merely reweights;
* the plain Euclidean distances used when ``use_cost_distance`` is off
  (fully static, so the whole Eq. 2-3 input is cacheable);
* the **disjoint-union batching plan**: to evaluate ``B`` guidance
  candidates in one forward, the graph is replicated ``B`` times into one
  block-diagonal graph.  Union node layout: access point ``(b, a)`` maps
  to ``b * A + a`` and module ``(b, m)`` to ``B * A + b * M + m`` — all
  APs first, mirroring the unbatched ``concat([aps, modules])`` layout so
  a ``(B * A, 3)`` guidance stack lines up with union indices directly.

Caches are keyed on the *live* graph object (weak reference, so entries
die with their graph and a recycled ``id()`` can never alias) and
validated against a content fingerprint — node/edge counts **plus** a
digest of the position and edge arrays — so both replacing a graph's
edge arrays and mutating its geometry in place invalidate its entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.graph.hetero import EdgeType, HeteroGraph

#: Per-entry cap on cached per-``B`` plans (batched statics, block plans,
#: union plans each have their own LRU of this size).  Eviction is
#: strictly LRU — a hit refreshes recency and capacity evicts only the
#: stalest plan, never the whole plan dict at once (wholesale clearing
#: made alternation across ``MAX_PLANS_PER_GRAPH + 1`` batch sizes
#: rebuild every plan on every forward).
MAX_PLANS_PER_GRAPH = 8


def graph_fingerprint(graph: HeteroGraph) -> tuple[int, int, int, str]:
    """Content fingerprint of everything :func:`build_statics` reads.

    Counts alone are not enough: mutating ``ap_positions`` in place (or
    swapping an edge array for one of equal length) changes the Eq. 1
    deltas without changing any count, and a count-only fingerprint
    would keep serving stale statics.  The digest covers positions and
    edge arrays byte-for-byte; features are deliberately excluded (the
    statics never read them — they are tiled verbatim, never derived).

    Also the identity the serving layer pins a checkpoint to: a
    :class:`repro.serve.registry.ModelRegistry` manifest records it at
    save time and refuses to score a graph whose fingerprint drifted.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(graph.ap_positions).tobytes())
    digest.update(np.ascontiguousarray(graph.module_positions).tobytes())
    for edge_type in EdgeType:
        pairs = graph.edges.get(edge_type)
        digest.update(edge_type.value.encode())
        if pairs is not None and len(pairs):
            digest.update(np.ascontiguousarray(pairs).tobytes())
    return (graph.num_aps, graph.num_modules, graph.num_edges(),
            digest.hexdigest())


@dataclass
class GraphStatics:
    """Per-graph static geometry shared by every forward pass.

    Attributes:
        edge_cache: directed (src, dst) index arrays per edge type.
        deltas: per edge type, the (E, 3) absolute (h, w, z) edge-vector
            decomposition of Eq. 1 — guidance-independent.
    """

    edge_cache: dict[EdgeType, tuple[np.ndarray, np.ndarray]]
    deltas: dict[EdgeType, np.ndarray]
    _euclidean: dict[EdgeType, np.ndarray] = field(default_factory=dict)
    _casts: dict[str, "GraphStatics"] = field(default_factory=dict, repr=False)

    def euclidean(self, edge_type: EdgeType) -> np.ndarray:
        """Static Euclidean edge lengths (the Eq. 1 ablation path)."""
        dist = self._euclidean.get(edge_type)
        if dist is None:
            d = self.deltas[edge_type]
            dist = np.sqrt((d * d).sum(axis=1) + 1e-6)
            self._euclidean[edge_type] = dist
        return dist

    def as_dtype(self, dtype) -> "GraphStatics":
        """This statics object with float arrays cast to ``dtype``.

        ``float64`` returns ``self``; other dtypes return a cached cast
        copy (index arrays are shared — only the geometry is cast), so
        the reduced-precision scoring path pays the cast once per plan,
        not once per forward.
        """
        dtype = np.dtype(dtype)
        if dtype == np.float64:
            return self
        cast = self._casts.get(dtype.name)
        if cast is None:
            cast = dataclasses.replace(
                self,
                deltas={et: d.astype(dtype) for et, d in self.deltas.items()},
                _euclidean={},
                _casts={},
            )
            self._casts[dtype.name] = cast
        return cast


@dataclass
class BatchedStatics:
    """The disjoint-union replication plan for a fixed batch size ``B``.

    Attributes:
        batch: number of replicas ``B``.
        num_nodes: total union nodes, ``B * (A + M)``.
        edge_cache: per edge type, (src, dst) arrays in union indexing,
            length ``B * E``.
        deltas: per edge type, the statics' deltas tiled ``B`` times.
        ap_features: (B * A, F) tiled static AP features.
        module_features: (B * M, F) tiled static module features.
        graph_ids: (B * N,) candidate id per union node, for per-candidate
            readout pooling.
        neutral_guidance: (B * M, 3) ones, the module receivers' guidance.
    """

    batch: int
    num_nodes: int
    edge_cache: dict[EdgeType, tuple[np.ndarray, np.ndarray]]
    deltas: dict[EdgeType, np.ndarray]
    ap_features: np.ndarray
    module_features: np.ndarray
    graph_ids: np.ndarray
    neutral_guidance: np.ndarray
    _euclidean: dict[EdgeType, np.ndarray] = field(default_factory=dict)
    _casts: dict[str, "BatchedStatics"] = field(default_factory=dict,
                                                repr=False)

    def euclidean(self, edge_type: EdgeType) -> np.ndarray:
        """Static Euclidean edge lengths in the union (tiled)."""
        dist = self._euclidean.get(edge_type)
        if dist is None:
            d = self.deltas[edge_type]
            dist = np.sqrt((d * d).sum(axis=1) + 1e-6)
            self._euclidean[edge_type] = dist
        return dist

    def as_dtype(self, dtype) -> "BatchedStatics":
        """This plan with float arrays cast to ``dtype`` (cached).

        ``float64`` returns ``self``.  Index arrays (edge indices,
        graph ids, CSR segment metadata) are dtype-independent and
        shared with the original plan.
        """
        dtype = np.dtype(dtype)
        if dtype == np.float64:
            return self
        cast = self._casts.get(dtype.name)
        if cast is None:
            cast = dataclasses.replace(
                self,
                deltas={et: d.astype(dtype) for et, d in self.deltas.items()},
                ap_features=self.ap_features.astype(dtype),
                module_features=self.module_features.astype(dtype),
                neutral_guidance=self.neutral_guidance.astype(dtype),
                _euclidean={},
                _casts={},
            )
            self._casts[dtype.name] = cast
        return cast


def build_statics(graph: HeteroGraph) -> GraphStatics:
    """Hoist the guidance-independent per-edge geometry of one graph."""
    positions = graph.positions
    edge_cache: dict[EdgeType, tuple[np.ndarray, np.ndarray]] = {}
    deltas: dict[EdgeType, np.ndarray] = {}
    for edge_type in EdgeType:
        src, dst = graph.directed_edges(edge_type)
        edge_cache[edge_type] = (src, dst)
        if len(src):
            deltas[edge_type] = np.abs(positions[dst] - positions[src])
        else:
            deltas[edge_type] = np.zeros((0, 3))
    return GraphStatics(edge_cache=edge_cache, deltas=deltas)


def _union_indices(idx: np.ndarray, replica: int, num_aps: int,
                   num_modules: int, batch: int) -> np.ndarray:
    """Map unbatched node indices into replica ``replica`` of the union."""
    return np.where(
        idx < num_aps,
        replica * num_aps + idx,
        batch * num_aps + replica * num_modules + (idx - num_aps),
    )


def build_batched(graph: HeteroGraph, statics: GraphStatics,
                  batch: int) -> BatchedStatics:
    """Replicate a graph ``batch`` times into one block-diagonal union."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    num_aps, num_modules = graph.num_aps, graph.num_modules
    edge_cache: dict[EdgeType, tuple[np.ndarray, np.ndarray]] = {}
    deltas: dict[EdgeType, np.ndarray] = {}
    for edge_type, (src, dst) in statics.edge_cache.items():
        if len(src) == 0:
            edge_cache[edge_type] = (src, dst)
            deltas[edge_type] = statics.deltas[edge_type]
            continue
        src_u = np.concatenate([
            _union_indices(src, b, num_aps, num_modules, batch)
            for b in range(batch)
        ])
        dst_u = np.concatenate([
            _union_indices(dst, b, num_aps, num_modules, batch)
            for b in range(batch)
        ])
        edge_cache[edge_type] = (src_u.astype(np.int64),
                                 dst_u.astype(np.int64))
        deltas[edge_type] = np.tile(statics.deltas[edge_type], (batch, 1))
    graph_ids = np.concatenate([
        np.repeat(np.arange(batch, dtype=np.int64), num_aps),
        np.repeat(np.arange(batch, dtype=np.int64), num_modules),
    ])
    return BatchedStatics(
        batch=batch,
        num_nodes=batch * graph.num_nodes,
        edge_cache=edge_cache,
        deltas=deltas,
        ap_features=np.tile(graph.ap_features, (batch, 1)),
        module_features=np.tile(graph.module_features, (batch, 1)),
        graph_ids=graph_ids,
        neutral_guidance=np.ones((batch * num_modules, 3)),
    )


@dataclass
class UnionBlockPlan(BatchedStatics):
    """A :class:`BatchedStatics` in CSR-contiguous (dst-sorted) order.

    The cache-block unit of the blocked forward: edge indices, deltas,
    and therefore the message rows they produce are laid out sorted by
    receiving node, so the segment reduction is one contiguous
    ``np.add.reduceat`` sweep per edge type instead of a per-column
    bincount scatter.

    Attributes:
        seg_nodes: per edge type, the distinct receiving nodes in
            ascending order (the reduction's output rows).
        seg_starts: per edge type, the CSR row offsets into the sorted
            edge arrays (``np.add.reduceat`` boundaries).
    """

    seg_nodes: dict[EdgeType, np.ndarray] = field(default_factory=dict)
    seg_starts: dict[EdgeType, np.ndarray] = field(default_factory=dict)


@dataclass(frozen=True)
class UnionPlan:
    """The full blocked decomposition of one ``(graph, B)`` forward.

    ``B`` replicas are processed as ``ceil(B / block)`` cache blocks of
    at most ``block`` replicas each; every block runs the complete
    RBF -> message -> segment-sum pass over its own small union before
    the next block starts, so the working set per block is bounded by
    ``block`` replicas regardless of ``B``.  Full blocks share a single
    :class:`UnionBlockPlan` object (their unions are congruent).

    Attributes:
        batch: total replicas ``B``.
        block: cache-block size the plan was built for.
        slices: per block, the ``(start, stop)`` replica range.
        plans: per block, its :class:`UnionBlockPlan` (aligned with
            ``slices``).
    """

    batch: int
    block: int
    slices: tuple[tuple[int, int], ...]
    plans: tuple[UnionBlockPlan, ...]


def build_block_plan(graph: HeteroGraph, statics: GraphStatics,
                     batch: int) -> UnionBlockPlan:
    """Build one CSR-contiguous cache block of ``batch`` replicas.

    Reorders the union's directed edges by receiving node (stable sort,
    so same-receiver edges keep their relative order) and precomputes
    the reduceat segment metadata.  Reordering changes the summation
    order of same-receiver messages, which is why the blocked forward's
    parity contract is <1e-10, not bitwise.
    """
    base = build_batched(graph, statics, batch)
    edge_cache: dict[EdgeType, tuple[np.ndarray, np.ndarray]] = {}
    deltas: dict[EdgeType, np.ndarray] = {}
    seg_nodes: dict[EdgeType, np.ndarray] = {}
    seg_starts: dict[EdgeType, np.ndarray] = {}
    for edge_type, (src, dst) in base.edge_cache.items():
        if len(src) == 0:
            edge_cache[edge_type] = (src, dst)
            deltas[edge_type] = base.deltas[edge_type]
            seg_nodes[edge_type] = np.zeros(0, dtype=np.int64)
            seg_starts[edge_type] = np.zeros(0, dtype=np.int64)
            continue
        order = np.argsort(dst, kind="stable")
        dst_sorted = np.ascontiguousarray(dst[order])
        nodes, starts = np.unique(dst_sorted, return_index=True)
        edge_cache[edge_type] = (np.ascontiguousarray(src[order]), dst_sorted)
        deltas[edge_type] = np.ascontiguousarray(
            base.deltas[edge_type][order])
        seg_nodes[edge_type] = nodes.astype(np.int64)
        seg_starts[edge_type] = starts.astype(np.int64)
    return UnionBlockPlan(
        batch=base.batch,
        num_nodes=base.num_nodes,
        edge_cache=edge_cache,
        deltas=deltas,
        ap_features=base.ap_features,
        module_features=base.module_features,
        graph_ids=base.graph_ids,
        neutral_guidance=base.neutral_guidance,
        seg_nodes=seg_nodes,
        seg_starts=seg_starts,
    )


class _Entry:
    __slots__ = ("ref", "fingerprint", "statics", "batched", "blocks",
                 "unions")

    def __init__(self, graph: HeteroGraph) -> None:
        self.ref = weakref.ref(graph)
        self.fingerprint = graph_fingerprint(graph)
        self.statics: GraphStatics | None = None
        self.batched: dict[int, BatchedStatics] = {}
        self.blocks: dict[int, UnionBlockPlan] = {}
        self.unions: dict[tuple[int, int], UnionPlan] = {}


class ForwardCacheStore:
    """Per-model cache of :class:`GraphStatics` / :class:`BatchedStatics`.

    A model is typically used with one graph (plus occasionally a
    validation graph), so the store keeps at most ``max_graphs`` live
    entries, evicted in LRU order: a hit refreshes the entry's recency,
    and capacity evicts only the stalest entries — never the entry being
    fetched, and never the whole store at once (wholesale clearing made
    alternation across ``max_graphs + 1`` graphs rebuild everything).
    """

    def __init__(self, max_graphs: int = 4) -> None:
        self.max_graphs = max_graphs
        self._entries: dict[int, _Entry] = {}

    def _entry(self, graph: HeteroGraph) -> _Entry:
        key = id(graph)
        entry = self._entries.get(key)
        if (entry is not None and entry.ref() is graph
                and entry.fingerprint == graph_fingerprint(graph)):
            # Refresh LRU recency (dicts preserve insertion order).
            self._entries.pop(key)
            self._entries[key] = entry
            return entry
        if entry is not None:  # dead ref or stale fingerprint: replace
            del self._entries[key]
        for dead in [k for k, e in self._entries.items()
                     if e.ref() is None]:
            del self._entries[dead]
        while len(self._entries) >= self.max_graphs:
            del self._entries[next(iter(self._entries))]
        entry = _Entry(graph)
        self._entries[key] = entry
        return entry

    # Per-entry plan dicts (batched / blocks / unions) are LRU caches:
    # a hit moves the plan to the back (most recent), an insert at
    # capacity evicts exactly the front (least recent) plan.  Dicts
    # preserve insertion order, so recency is the dict order itself.

    @staticmethod
    def _plan_hit(plans: dict, key):
        plan = plans.pop(key, None)
        if plan is not None:
            plans[key] = plan
        return plan

    @staticmethod
    def _plan_put(plans: dict, key, plan) -> None:
        while len(plans) >= MAX_PLANS_PER_GRAPH:
            del plans[next(iter(plans))]
        plans[key] = plan

    def _statics(self, entry: _Entry, graph: HeteroGraph) -> GraphStatics:
        if entry.statics is None:
            entry.statics = build_statics(graph)
        return entry.statics

    def statics(self, graph: HeteroGraph) -> GraphStatics:
        return self._statics(self._entry(graph), graph)

    def batched(self, graph: HeteroGraph, batch: int) -> BatchedStatics:
        """The single-union (no cache blocking) plan for batch ``B``."""
        entry = self._entry(graph)
        plan = self._plan_hit(entry.batched, batch)
        if plan is None:
            plan = build_batched(graph, self._statics(entry, graph), batch)
            self._plan_put(entry.batched, batch, plan)
        return plan

    def _block_plan(self, entry: _Entry, graph: HeteroGraph,
                    batch: int) -> UnionBlockPlan:
        plan = self._plan_hit(entry.blocks, batch)
        if plan is None:
            plan = build_block_plan(graph, self._statics(entry, graph), batch)
            self._plan_put(entry.blocks, batch, plan)
        return plan

    def union_plan(self, graph: HeteroGraph, batch: int,
                   block: int) -> UnionPlan:
        """The blocked decomposition of a ``B``-candidate forward.

        Keyed per ``(graph fingerprint, B, block)``; the underlying
        cache blocks are additionally shared across batch sizes (a
        ``B=12`` and a ``B=8`` plan at ``block=4`` reuse the same
        4-replica :class:`UnionBlockPlan`), so relaxation waves and
        serving micro-batches of different widths amortize one block
        build.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        block = min(block, batch)
        entry = self._entry(graph)
        key = (batch, block)
        plan = self._plan_hit(entry.unions, key)
        if plan is not None:
            # A union hit is also a use of its cache blocks: refresh
            # their recency too, so a hot union's blocks are never the
            # eviction victims when a new block size comes along.
            for size in dict.fromkeys(p.batch for p in plan.plans):
                self._plan_hit(entry.blocks, size)
        if plan is None:
            full, remainder = divmod(batch, block)
            sizes = [block] * full + ([remainder] if remainder else [])
            by_size = {size: self._block_plan(entry, graph, size)
                       for size in dict.fromkeys(sizes)}
            slices = []
            start = 0
            for size in sizes:
                slices.append((start, start + size))
                start += size
            plan = UnionPlan(
                batch=batch,
                block=block,
                slices=tuple(slices),
                plans=tuple(by_size[size] for size in sizes),
            )
            self._plan_put(entry.unions, key, plan)
        return plan
