"""Performance layer: stage timing, forward caches, parallel execution.

Three concerns live here, all serving the ROADMAP's "as fast as the
hardware allows" north star:

* :mod:`repro.perf.timing` — named stage timers and the machine-readable
  ``BENCH_perf.json`` record that tracks the performance trajectory;
* :mod:`repro.perf.cache` — graph-invariant forward-pass caches and the
  disjoint-union batching plan behind the batched 3DGNN forward;
* :mod:`repro.perf.parallel` — the process-pool executor for database
  construction (imported lazily: it pulls in the whole pipeline).
"""

from repro.perf.cache import (
    BatchedStatics,
    ForwardCacheStore,
    GraphStatics,
    build_batched,
    build_statics,
    graph_fingerprint,
)
from repro.perf.timing import (
    BENCH_SCHEMA_VERSION,
    PIPELINE_STAGES,
    StageStats,
    StageTimer,
    bench_payload,
    compare_to_baseline,
    load_bench_json,
    write_bench_json,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PIPELINE_STAGES",
    "StageStats",
    "StageTimer",
    "bench_payload",
    "compare_to_baseline",
    "load_bench_json",
    "write_bench_json",
    "BatchedStatics",
    "ForwardCacheStore",
    "GraphStatics",
    "build_batched",
    "build_statics",
    "graph_fingerprint",
    "ParallelConfig",
    "SamplePool",
]


def __getattr__(name: str):
    # repro.perf.parallel imports the core pipeline; loading it eagerly
    # from here would cycle (model -> perf.cache -> perf -> parallel ->
    # core -> model).  Resolve its exports on first touch instead.
    if name in ("ParallelConfig", "SamplePool"):
        from repro.perf import parallel

        return getattr(parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
