"""Stage timers and the machine-readable performance record.

Every hot path of the pipeline (route / extract / simulate / train /
relax) reports into a :class:`StageTimer`, and ``benchmarks/bench_perf.py``
serializes the aggregate as ``BENCH_perf.json`` at the repo root so the
performance trajectory is tracked across PRs.  The Figure 5 runtime
breakdown (``benchmarks/bench_fig5_runtime.py``) reads the *same* timers,
so the paper-facing numbers and the perf record cannot diverge.

Usage::

    timer = StageTimer()
    with timer.stage("route"):
        router.route_all()
    timer.to_dict()   # {"route": {"seconds": ..., "calls": 1}}

The observability layer unifies timers and trace spans: pipeline code
wraps hot paths in ``obs.span(name, timer=timer)`` instead of
``timer.stage(name)``, so one ``perf_counter`` read feeds both this
perf record and the JSONL trace (see ``docs/OBSERVABILITY.md``).  With
tracing disabled the span degrades to exactly the timing this module
did alone.
"""

from __future__ import annotations

import json
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Canonical stage names of the pipeline's hot paths, in flow order.
PIPELINE_STAGES = ("route", "extract", "simulate", "train", "relax")

#: Schema version of BENCH_perf.json; bump on incompatible layout changes.
BENCH_SCHEMA_VERSION = 1


@dataclass
class StageStats:
    """Accumulated wall time of one named stage.

    Attributes:
        seconds: total wall-clock seconds across all calls.
        calls: number of timed entries.
    """

    seconds: float = 0.0
    calls: int = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.calls += 1


@dataclass
class StageTimer:
    """Accumulates wall time per named stage.

    Not thread-safe; parallel workers time their own stages and the
    parent merges the returned :class:`StageStats` via :meth:`absorb`.
    """

    stages: dict[str, StageStats] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (nesting different names ok)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Record one timed call of ``seconds`` under ``name``."""
        self.stages.setdefault(name, StageStats()).add(seconds)

    def absorb(self, other: "StageTimer") -> None:
        """Merge another timer's stats into this one (e.g. from a worker)."""
        for name, stats in other.stages.items():
            mine = self.stages.setdefault(name, StageStats())
            mine.seconds += stats.seconds
            mine.calls += stats.calls

    def seconds(self, name: str) -> float:
        stats = self.stages.get(name)
        return stats.seconds if stats is not None else 0.0

    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.stages.values())

    def to_dict(self) -> dict[str, dict[str, float]]:
        """JSON-ready mapping ``{stage: {"seconds": s, "calls": n}}``."""
        return {
            name: {"seconds": stats.seconds, "calls": stats.calls}
            for name, stats in sorted(self.stages.items())
        }


def bench_payload(timer: StageTimer,
                  extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """Assemble the BENCH_perf.json payload from a timer plus metadata."""
    payload: dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "stages": timer.to_dict(),
    }
    if extra:
        payload.update(extra)
    return payload


def write_bench_json(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a perf payload as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_bench_json(path: str | Path) -> dict[str, Any] | None:
    """Load a committed perf baseline; ``None`` when absent."""
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def compare_to_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_ratio: float = 3.0,
    min_seconds: float = 0.05,
) -> list[str]:
    """Regression check: stages slower than ``max_ratio`` x baseline.

    Stages faster than ``min_seconds`` in the baseline are skipped — at
    that scale the measurement is dominated by noise, and CI runners are
    slow and jittery (hence the generous default ratio).

    Returns a list of human-readable regression descriptions (empty =
    pass).
    """
    problems: list[str] = []
    base_stages = baseline.get("stages", {})
    cur_stages = current.get("stages", {})
    for name, base in base_stages.items():
        base_s = float(base.get("seconds", 0.0))
        if base_s < min_seconds:
            continue
        cur = cur_stages.get(name)
        if cur is None:
            problems.append(f"stage {name!r} missing from current run")
            continue
        cur_s = float(cur.get("seconds", 0.0))
        if cur_s > max_ratio * base_s:
            problems.append(
                f"stage {name!r} regressed {cur_s / base_s:.1f}x "
                f"({base_s:.3f}s -> {cur_s:.3f}s, limit {max_ratio:.1f}x)"
            )
    return problems
