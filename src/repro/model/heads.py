"""Graph readout and metric prediction head (Eq. 6)."""

from __future__ import annotations

import numpy as np

from repro.nn import MLP, Module, Tensor, segment_sum

#: Number of predicted metrics (offset, CMRR, UGB, gain, noise).
NUM_METRICS = 5


class ReadoutHead(Module):
    """Global readout ``u = sum_i MLP(v_i)`` followed by the FC metric head.

    Args:
        hidden: node embedding width.
        rng: parameter-init RNG.
        num_metrics: output width (the paper's five metrics).
    """

    def __init__(
        self, hidden: int, rng: np.random.Generator, num_metrics: int = NUM_METRICS
    ) -> None:
        self.node_mlp = MLP([hidden, hidden], rng)
        self.fc = MLP([hidden, hidden, num_metrics], rng)
        self.num_metrics = num_metrics

    def forward(
        self,
        node_embeddings: Tensor,
        graph_ids: np.ndarray | None = None,
        num_graphs: int = 1,
    ) -> Tensor:
        """Predict normalized metrics from final node embeddings.

        Args:
            node_embeddings: (num_nodes, hidden) tensor after L layers of
                message passing.  For a batched (disjoint-union) forward
                this holds ``num_graphs`` replicas' nodes.
            graph_ids: per-node graph id for batched pooling; ``None``
                pools all nodes into a single graph.
            num_graphs: number of graphs in the union when ``graph_ids``
                is given.

        Returns:
            Length-``num_metrics`` tensor of predictions, or a
            ``(num_graphs, num_metrics)`` tensor when ``graph_ids`` is
            given.
        """
        per_node = self.node_mlp(node_embeddings)
        if graph_ids is None:
            pooled = per_node.sum(axis=0) * (1.0 / max(len(node_embeddings), 1))
            return self.fc(pooled.reshape(1, -1)).reshape(-1)
        nodes_per_graph = len(node_embeddings) // max(num_graphs, 1)
        pooled = segment_sum(per_node, graph_ids, num_graphs) * (
            1.0 / max(nodes_per_graph, 1)
        )
        return self.fc(pooled)
