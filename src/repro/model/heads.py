"""Graph readout and metric prediction head (Eq. 6)."""

from __future__ import annotations

import numpy as np

from repro.nn import MLP, Module, Tensor

#: Number of predicted metrics (offset, CMRR, UGB, gain, noise).
NUM_METRICS = 5


class ReadoutHead(Module):
    """Global readout ``u = sum_i MLP(v_i)`` followed by the FC metric head.

    Args:
        hidden: node embedding width.
        rng: parameter-init RNG.
        num_metrics: output width (the paper's five metrics).
    """

    def __init__(
        self, hidden: int, rng: np.random.Generator, num_metrics: int = NUM_METRICS
    ) -> None:
        self.node_mlp = MLP([hidden, hidden], rng)
        self.fc = MLP([hidden, hidden, num_metrics], rng)
        self.num_metrics = num_metrics

    def forward(self, node_embeddings: Tensor) -> Tensor:
        """Predict normalized metrics from final node embeddings.

        Args:
            node_embeddings: (num_nodes, hidden) tensor after L layers of
                message passing.

        Returns:
            Length-``num_metrics`` tensor of normalized metric predictions.
        """
        per_node = self.node_mlp(node_embeddings)
        pooled = per_node.sum(axis=0) * (1.0 / max(len(node_embeddings), 1))
        return self.fc(pooled.reshape(1, -1)).reshape(-1)
