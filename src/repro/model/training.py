"""Training loop for the 3DGNN performance model (L2 loss, Adam)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.model.gnn3d import Gnn3d
from repro.nn import Adam, Tensor
from repro.obs import NULL_CONTEXT, RunContext


@dataclass(frozen=True)
class TrainSample:
    """One supervised sample: guidance in, normalized metrics out.

    Attributes:
        guidance: (num_aps, 3) array in graph AP order.
        targets: length-5 normalized metric vector.
    """

    guidance: np.ndarray
    targets: np.ndarray


@dataclass
class TrainConfig:
    """Training knobs.

    Attributes:
        epochs: passes over the training split.
        lr: Adam learning rate.
        batch_size: samples per gradient step.
        val_fraction: tail fraction held out for validation.
        patience: early-stop after this many epochs without val improvement
            (0 disables early stopping).
        seed: shuffling seed.
    """

    epochs: int = 40
    lr: float = 3e-3
    batch_size: int = 8
    val_fraction: float = 0.15
    patience: int = 10
    seed: int = 0


@dataclass
class TrainHistory:
    """Per-epoch loss trajectory."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)

    @property
    def best_val(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")


class Trainer:
    """Trains a :class:`Gnn3d` on (guidance, metrics) samples of one design.

    With an enabled ``obs`` context, every epoch emits a ``train.epoch``
    span carrying its losses.
    """

    def __init__(
        self,
        model: Gnn3d,
        graph: HeteroGraph,
        config: TrainConfig | None = None,
        obs: RunContext | None = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.config = config or TrainConfig()
        self.obs = obs if obs is not None else NULL_CONTEXT
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self.history = TrainHistory()

    def _sample_loss(self, sample: TrainSample,
                     graph: HeteroGraph | None = None) -> Tensor:
        pred = self.model(graph if graph is not None else self.graph,
                          Tensor(sample.guidance))
        err = pred - Tensor(sample.targets)
        return (err * err).mean()

    def evaluate(self, samples: list[TrainSample],
                 graph: HeteroGraph | None = None) -> float:
        """Mean L2 loss over samples (no gradient)."""
        if not samples:
            return float("nan")
        total = 0.0
        for sample in samples:
            total += self._sample_loss(sample, graph=graph).item()
        return total / len(samples)

    def fit(self, samples: list[TrainSample]) -> TrainHistory:
        """Train until the epoch budget or early stopping."""
        if len(samples) < 2:
            raise ValueError(f"need at least 2 samples, got {len(samples)}")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        n_val = max(1, int(len(samples) * cfg.val_fraction)) if cfg.val_fraction else 0
        train = samples[: len(samples) - n_val]
        val = samples[len(samples) - n_val:]
        if not train:
            train, val = samples, []

        best_val = float("inf")
        stale = 0
        stop = False
        order = np.arange(len(train))
        for epoch in range(cfg.epochs):
            with self.obs.span("train.epoch", epoch=epoch) as span:
                rng.shuffle(order)
                epoch_loss = 0.0
                for start in range(0, len(order), cfg.batch_size):
                    batch = order[start: start + cfg.batch_size]
                    self.optimizer.zero_grad()
                    batch_loss = 0.0
                    for idx in batch:
                        loss = self._sample_loss(train[idx])
                        loss.backward(np.asarray(1.0 / len(batch)))
                        batch_loss += loss.item()
                    self.optimizer.step()
                    epoch_loss += batch_loss
                train_loss = epoch_loss / len(train)
                self.history.train_loss.append(train_loss)
                span.set(train_loss=train_loss)

                if val:
                    val_loss = self.evaluate(val)
                    self.history.val_loss.append(val_loss)
                    span.set(val_loss=val_loss)
                    if val_loss < best_val - 1e-6:
                        best_val = val_loss
                        stale = 0
                    elif cfg.patience:
                        stale += 1
                        if stale >= cfg.patience:
                            span.set(early_stop=True)
                            stop = True
            if stop:
                break
        return self.history

    def fit_multi(
        self, designs: list[tuple[HeteroGraph, list[TrainSample]]]
    ) -> TrainHistory:
        """Train one model across several designs at once.

        The GNN is graph-parametric (fixed feature widths, per-forward
        topology), so samples from different circuits share weights; the
        validation split is the tail fraction *of each design* so every
        topology is represented in the val loss.  ``self.graph`` is
        ignored — each sample carries its own graph.
        """
        pool: list[tuple[HeteroGraph, TrainSample]] = []
        val: list[tuple[HeteroGraph, TrainSample]] = []
        cfg = self.config
        for graph, samples in designs:
            n_val = (max(1, int(len(samples) * cfg.val_fraction))
                     if cfg.val_fraction and len(samples) > 1 else 0)
            split = len(samples) - n_val
            pool.extend((graph, s) for s in samples[:split])
            val.extend((graph, s) for s in samples[split:])
        if len(pool) < 2:
            raise ValueError(
                f"need at least 2 training samples across designs, "
                f"got {len(pool)}")

        rng = np.random.default_rng(cfg.seed)
        best_val = float("inf")
        stale = 0
        stop = False
        order = np.arange(len(pool))
        for epoch in range(cfg.epochs):
            with self.obs.span("train.epoch", epoch=epoch) as span:
                rng.shuffle(order)
                epoch_loss = 0.0
                for start in range(0, len(order), cfg.batch_size):
                    batch = order[start: start + cfg.batch_size]
                    self.optimizer.zero_grad()
                    for idx in batch:
                        graph, sample = pool[idx]
                        loss = self._sample_loss(sample, graph=graph)
                        loss.backward(np.asarray(1.0 / len(batch)))
                        epoch_loss += loss.item()
                    self.optimizer.step()
                train_loss = epoch_loss / len(pool)
                self.history.train_loss.append(train_loss)
                span.set(train_loss=train_loss)

                if val:
                    total = 0.0
                    for graph, sample in val:
                        total += self._sample_loss(sample, graph=graph).item()
                    val_loss = total / len(val)
                    self.history.val_loss.append(val_loss)
                    span.set(val_loss=val_loss)
                    if val_loss < best_val - 1e-6:
                        best_val = val_loss
                        stale = 0
                    elif cfg.patience:
                        stale += 1
                        if stale >= cfg.patience:
                            span.set(early_stop=True)
                            stop = True
            if stop:
                break
        return self.history
