"""The 3DGNN: cost-aware distance, RBF expansion, heterogeneous message
passing (Eq. 1-5), and the metric head (Eq. 6).

The guidance tensor ``C`` enters the forward pass through the cost-aware
distance of Eq. 1, so marking it ``requires_grad`` yields ``dV/dC`` for
potential relaxation with no extra machinery.

Config flags expose the paper's design choices for ablation benches:
``use_rbf`` (Eq. 2-3 vs raw distances), ``use_cost_distance`` (Eq. 1 vs
plain Euclidean), and ``heterogeneous`` (typed edge MLPs vs shared).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.hetero import EdgeType, HeteroGraph
from repro.model.heads import NUM_METRICS, ReadoutHead
from repro.nn import (
    MLP,
    Module,
    RBFExpansion,
    Tensor,
    concat,
    segment_sum,
    segment_sum_csr,
)
from repro.perf.cache import (
    BatchedStatics,
    ForwardCacheStore,
    GraphStatics,
    UnionBlockPlan,
)

#: Default cache-block size of the blocked batched forward: replicas per
#: union processed before moving to the next block.  Per-candidate cost
#: of a single big union is flat only while its per-op temporaries stay
#: cache- and heap-resident: past ~2 OTA-sized replicas the message
#: arrays cross the allocator's mmap threshold (~128 KiB), so every
#: temporary costs page faults instead of heap reuse, and they start
#: spilling L2 well before amortization can compensate.  Blocking runs
#: the full RBF -> message -> segment-sum pass per 2-replica block
#: instead, bounding the working set regardless of ``B``; the
#: throughput sweep in ``benchmarks/bench_serve.py`` is monotone in
#: ``max_batch`` with this setting (see docs/PERFORMANCE.md, "Forward
#: blocking").
DEFAULT_CACHE_BLOCK = 2


@dataclass(frozen=True)
class Gnn3dConfig:
    """3DGNN hyperparameters.

    Attributes:
        hidden: node/message embedding width.
        num_layers: message-passing rounds ``L``.
        rbf_centers: radial basis bank size.
        rbf_cutoff: largest distance (grid cells) covered by the bank.
        use_rbf: expand distances with RBF (Eq. 2-3); raw distance if False.
        use_cost_distance: modulate distances with guidance (Eq. 1); plain
            Euclidean if False (ablation: kills dV/dC).
        heterogeneous: per-edge-type message MLPs; shared MLP if False.
        seed: parameter-init seed.
    """

    hidden: int = 32
    num_layers: int = 3
    rbf_centers: int = 16
    rbf_cutoff: float = 40.0
    use_rbf: bool = True
    use_cost_distance: bool = True
    heterogeneous: bool = True
    seed: int = 0


class _MessageBlock(Module):
    """Eq. 5 for one edge type: MLP(MLP(v_src) * MLP(Psi(d)))."""

    def __init__(self, hidden: int, dist_dim: int, rng: np.random.Generator) -> None:
        self.src_mlp = MLP([hidden, hidden], rng)
        self.dist_mlp = MLP([dist_dim, hidden], rng)
        self.out_mlp = MLP([hidden, hidden], rng)

    def forward(self, h: Tensor, src: np.ndarray, dist_feat: Tensor) -> Tensor:
        gathered = h.gather_rows(src)
        return self.out_mlp(self.src_mlp(gathered) * self.dist_mlp(dist_feat))


class _PassingLayer(Module):
    """One round of cost-aware message passing over all edge types."""

    def __init__(self, hidden: int, dist_dim: int, rng: np.random.Generator,
                 heterogeneous: bool) -> None:
        if heterogeneous:
            self.blocks = {
                et: _MessageBlock(hidden, dist_dim, rng) for et in EdgeType
            }
        else:
            shared = _MessageBlock(hidden, dist_dim, rng)
            self.blocks = {et: shared for et in EdgeType}
        # Register for parameter discovery (dicts are not walked).
        self._block_list = list(dict.fromkeys(self.blocks.values()))

    def forward(
        self,
        h: Tensor,
        edge_cache: dict[EdgeType, tuple[np.ndarray, np.ndarray]],
        dist_feats: dict[EdgeType, Tensor],
        num_nodes: int,
        plan: UnionBlockPlan | None = None,
    ) -> Tensor:
        aggregated = None
        for edge_type, (src, dst) in edge_cache.items():
            if len(src) == 0:
                continue
            messages = self.blocks[edge_type](h, src, dist_feats[edge_type])
            if plan is not None:
                # Edges (and therefore message rows) are dst-sorted in a
                # block plan: aggregate with one contiguous reduceat
                # sweep instead of a bincount scatter.
                summed = segment_sum_csr(
                    messages, plan.seg_nodes[edge_type],
                    plan.seg_starts[edge_type], dst, num_nodes)
            else:
                summed = segment_sum(messages, dst, num_nodes)
            aggregated = summed if aggregated is None else aggregated + summed
        if aggregated is None:
            return h
        return h + aggregated


class Gnn3d(Module):
    """The full 3DGNN performance model ``f_theta(G_H, C)``."""

    def __init__(self, ap_dim: int, module_dim: int,
                 config: Gnn3dConfig | None = None) -> None:
        self.config = config or Gnn3dConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.ap_embed = MLP([ap_dim, cfg.hidden], rng)
        self.module_embed = MLP([module_dim, cfg.hidden], rng)
        self.rbf = RBFExpansion(cfg.rbf_centers, cfg.rbf_cutoff)
        dist_dim = cfg.rbf_centers if cfg.use_rbf else 1
        self.layers = [
            _PassingLayer(cfg.hidden, dist_dim, rng, cfg.heterogeneous)
            for _ in range(cfg.num_layers)
        ]
        self.head = ReadoutHead(cfg.hidden, rng, NUM_METRICS)
        self.cache = ForwardCacheStore()

    # -- distance machinery ------------------------------------------------------

    def _edge_distances(
        self, guidance_all: Tensor, statics: GraphStatics | BatchedStatics
    ) -> dict[EdgeType, Tensor]:
        """Cost-aware distance features per edge type (Eq. 1-3).

        ``C_k`` of the *receiving* node modulates the (h, w, z) decomposition
        of the edge vector; module receivers use neutral guidance.  The
        decomposition itself (``|pos[dst] - pos[src]|``) is
        guidance-independent and comes precomputed from ``statics``.
        """
        feats: dict[EdgeType, Tensor] = {}
        dtype = guidance_all.data.dtype
        for edge_type, (src, dst) in statics.edge_cache.items():
            if len(src) == 0:
                feats[edge_type] = Tensor(np.zeros((0, 1), dtype=dtype))
                continue
            if self.config.use_cost_distance:
                c_recv = guidance_all.gather_rows(dst)
                weighted = c_recv * Tensor(statics.deltas[edge_type])
                dist = ((weighted * weighted).sum(axis=1) + 1e-6).sqrt()
            else:
                dist = Tensor(statics.euclidean(edge_type))
            if self.config.use_rbf:
                feats[edge_type] = self.rbf(dist)
            else:
                feats[edge_type] = dist.reshape(-1, 1)
        return feats

    # -- forward -----------------------------------------------------------------------

    def forward(self, graph: HeteroGraph, guidance: Tensor) -> Tensor:
        """Predict normalized metrics for guidance ``C`` on graph ``G_H``.

        Args:
            graph: the heterogeneous routing graph.
            guidance: (num_aps, 3) tensor of per-AP guidance vectors, in the
                order of ``graph.ap_keys``.  Mark ``requires_grad`` to get
                ``dV/dC`` after ``backward()``.  A (B, num_aps, 3) tensor
                evaluates ``B`` guidance candidates in one batched pass
                over a disjoint union of ``B`` graph replicas.

        Returns:
            Length-5 tensor of normalized metric predictions (see
            :meth:`repro.simulation.metrics.PerformanceMetrics.to_normalized`),
            or a (B, 5) tensor for batched guidance.
        """
        if guidance.ndim == 3:
            return self.forward_batch(graph, guidance)
        if guidance.shape != (graph.num_aps, 3):
            raise ValueError(
                f"guidance shape {guidance.shape} != ({graph.num_aps}, 3)"
            )
        dtype = guidance.data.dtype
        statics = self.cache.statics(graph).as_dtype(dtype)
        num_modules = graph.num_modules
        neutral = Tensor(np.ones((num_modules, 3), dtype=dtype))
        guidance_all = (concat([guidance, neutral], axis=0)
                        if num_modules else guidance)
        dist_feats = self._edge_distances(guidance_all, statics)

        h_ap = self.ap_embed(self._features(graph.ap_features, dtype))
        h_mod = self.module_embed(self._features(graph.module_features, dtype))
        h = concat([h_ap, h_mod], axis=0) if graph.num_modules else h_ap

        for layer in self.layers:
            h = layer(h, statics.edge_cache, dist_feats, graph.num_nodes)
        return self.head(h)

    def forward_batch(self, graph: HeteroGraph, guidance: Tensor,
                      block: int | None = None) -> Tensor:
        """Evaluate ``B`` guidance candidates with cache blocking.

        The candidates are processed in blocks of at most ``block``
        (default :data:`DEFAULT_CACHE_BLOCK`) replicas; each block runs
        the complete fused RBF -> message -> segment-sum pass over its
        own CSR-contiguous union
        (:meth:`repro.perf.cache.ForwardCacheStore.union_plan`) before
        the next block starts, so the per-block working set stays
        L2-resident regardless of ``B``.  Gradients flow to ``guidance``
        exactly as in :meth:`forward_union` — block outputs concatenate
        and block backward passes scatter into the corresponding
        guidance slices.

        Parity contract: float64 results match the unbatched forward to
        <1e-10 per row (CSR reordering changes summation order, so not
        bitwise); the float32 scoring path is gated at
        :data:`repro.serve.registry.FLOAT32_PARITY_RTOL`.
        """
        batch = guidance.shape[0]
        if guidance.shape != (batch, graph.num_aps, 3):
            raise ValueError(
                f"guidance shape {guidance.shape} != "
                f"({batch}, {graph.num_aps}, 3)"
            )
        if block is None:
            block = DEFAULT_CACHE_BLOCK
        plan = self.cache.union_plan(graph, batch, block)
        outs = []
        for (start, stop), block_plan in zip(plan.slices, plan.plans):
            sub = (guidance if stop - start == batch
                   else guidance[start:stop])
            outs.append(self._forward_union(graph, sub, block_plan))
        if len(outs) == 1:
            return outs[0]
        return concat(outs, axis=0)

    def forward_union(self, graph: HeteroGraph, guidance: Tensor) -> Tensor:
        """One forward over a single union of all ``B`` replicas at once.

        The pre-blocking reference path: no cache blocking, edges in
        plan (unsorted) order, bincount aggregation — bit-identical to
        what ``forward`` produced for 3-D guidance before blocking
        existed.  Kept as the parity baseline for the blocked path and
        for working sets known to fit cache.
        """
        batch = guidance.shape[0]
        if guidance.shape != (batch, graph.num_aps, 3):
            raise ValueError(
                f"guidance shape {guidance.shape} != "
                f"({batch}, {graph.num_aps}, 3)"
            )
        return self._forward_union(graph, guidance,
                                   self.cache.batched(graph, batch))

    def _forward_union(self, graph: HeteroGraph, guidance: Tensor,
                       plan: BatchedStatics) -> Tensor:
        """Forward ``plan.batch`` replicas over one block-diagonal union.

        The union keeps all APs first (replica-major), mirroring the
        unbatched ``concat([aps, modules])`` node layout, so the flattened
        ``(b * num_aps, 3)`` guidance stack indexes it directly.  Replicas
        share parameters but exchange no messages (no cross-replica
        edges), so row ``b`` of the output equals the unbatched forward of
        candidate ``b`` up to floating-point summation order.  A
        :class:`UnionBlockPlan` routes aggregation through the contiguous
        CSR reduction; a plain :class:`BatchedStatics` keeps the bincount
        path.
        """
        batch = plan.batch
        dtype = guidance.data.dtype
        plan = plan.as_dtype(dtype)
        block_plan = plan if isinstance(plan, UnionBlockPlan) else None
        flat = guidance.reshape(batch * graph.num_aps, 3)
        guidance_all = (
            concat([flat, Tensor(plan.neutral_guidance)], axis=0)
            if graph.num_modules else flat
        )
        dist_feats = self._edge_distances(guidance_all, plan)

        h_ap = self.ap_embed(Tensor(plan.ap_features))
        h_mod = self.module_embed(Tensor(plan.module_features))
        h = concat([h_ap, h_mod], axis=0) if graph.num_modules else h_ap

        for layer in self.layers:
            h = layer(h, plan.edge_cache, dist_feats, plan.num_nodes,
                      plan=block_plan)
        return self.head(h, graph_ids=plan.graph_ids, num_graphs=batch)

    @staticmethod
    def _features(features: np.ndarray, dtype: np.dtype) -> Tensor:
        """Wrap static node features, cast to the guidance dtype."""
        if features.dtype != dtype:
            features = features.astype(dtype)
        return Tensor(features)
