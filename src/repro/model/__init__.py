"""The protein-inspired 3DGNN performance model (Section 4.2)."""

from repro.model.gnn3d import Gnn3d, Gnn3dConfig
from repro.model.heads import ReadoutHead
from repro.model.evaluation import SurrogateQuality, evaluate_surrogate
from repro.model.training import TrainConfig, Trainer, TrainSample

__all__ = [
    "Gnn3d",
    "Gnn3dConfig",
    "ReadoutHead",
    "Trainer",
    "TrainConfig",
    "TrainSample",
    "SurrogateQuality",
    "evaluate_surrogate",
]
