"""Model-quality metrics for the trained performance surrogate.

Potential relaxation only needs the surrogate to *rank* guidance points
correctly — absolute calibration is secondary.  So besides per-metric
regression error we report Kendall's tau between predicted and measured
figures of merit, the quantity that actually predicts whether relaxation
will walk toward good guidance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import kendalltau

from repro.graph.hetero import HeteroGraph
from repro.model.gnn3d import Gnn3d
from repro.model.training import TrainSample
from repro.nn import Tensor
from repro.simulation.metrics import METRIC_NAMES, FoMWeights


@dataclass(frozen=True)
class SurrogateQuality:
    """Evaluation summary of a trained 3DGNN.

    Attributes:
        mae_per_metric: mean absolute error on normalized targets, keyed by
            metric name.
        fom_kendall_tau: Kendall's tau between predicted and true FoM over
            the evaluation set (1 = perfect ranking).
        fom_top1_hit: whether the sample with the best predicted FoM is in
            the best-true-FoM half of the set.
        num_samples: evaluation set size.
    """

    mae_per_metric: dict[str, float]
    fom_kendall_tau: float
    fom_top1_hit: bool
    num_samples: int

    @property
    def mean_mae(self) -> float:
        return float(np.mean(list(self.mae_per_metric.values())))


def predict_batch(
    model: Gnn3d, graph: HeteroGraph, samples: list[TrainSample]
) -> np.ndarray:
    """Stack predictions for a sample list, shape (n, 5)."""
    return np.stack([
        model(graph, Tensor(s.guidance)).numpy() for s in samples
    ]) if samples else np.zeros((0, 5))


def evaluate_surrogate(
    model: Gnn3d,
    graph: HeteroGraph,
    samples: list[TrainSample],
    weights: FoMWeights | None = None,
) -> SurrogateQuality:
    """Score a trained surrogate on an evaluation set."""
    if len(samples) < 2:
        raise ValueError(f"need at least 2 evaluation samples, got {len(samples)}")
    weights = weights or FoMWeights()
    preds = predict_batch(model, graph, samples)
    targets = np.stack([s.targets for s in samples])

    mae = np.abs(preds - targets).mean(axis=0)
    mae_per_metric = {name: float(mae[i]) for i, name in enumerate(METRIC_NAMES)}

    w = weights.as_signed_vector()
    fom_pred = preds @ w
    fom_true = targets @ w
    tau = kendalltau(fom_pred, fom_true).statistic
    tau = 0.0 if np.isnan(tau) else float(tau)

    best_pred_idx = int(np.argmin(fom_pred))
    true_rank = int(np.argsort(np.argsort(fom_true))[best_pred_idx])
    top1_hit = true_rank < max(len(samples) // 2, 1)

    return SurrogateQuality(
        mae_per_metric=mae_per_metric,
        fom_kendall_tau=tau,
        fom_top1_hit=top1_hit,
        num_samples=len(samples),
    )


def format_quality_report(quality: SurrogateQuality) -> str:
    """Human-readable surrogate-quality summary."""
    lines = [f"Surrogate quality over {quality.num_samples} samples:",
             f"  FoM Kendall tau: {quality.fom_kendall_tau:+.3f}",
             f"  top-1 predicted in best-true half: {quality.fom_top1_hit}"]
    for name, value in quality.mae_per_metric.items():
        lines.append(f"  MAE[{name}]: {value:.4f}")
    return "\n".join(lines)
