"""Baseline routers the paper compares against."""

from repro.baselines.geniusroute import GeniusRoute, GeniusRouteConfig
from repro.baselines.magical import route_magical

__all__ = ["route_magical", "GeniusRoute", "GeniusRouteConfig"]
