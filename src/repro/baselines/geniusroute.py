"""GeniusRoute baseline [11]: generative (VAE) 2D routing guidance.

GeniusRoute trains a generative model on existing layouts and decodes a
*uniform 2D* guidance map telling the router where wires should go.  We
reproduce the paradigm on our substrates:

* training data: routed layouts from the design database, using the
  better-performing half as the pseudo-expert corpus (the original trains on
  manual layouts, which do not exist here — see DESIGN.md section 2);
* model: a numpy VAE over rasterized 2D wire-density maps of the critical
  nets;
* inference: decode a guidance map and convert it to per-access-point
  routing costs that attract wires toward high-probability regions.

The known limitations the paper criticizes — single 2D resolution, no
per-net differentiation, no explicit performance objective — are inherent
to this construction, which is exactly the point of the comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import Database, GuidanceSample, route_and_measure
from repro.netlist.circuit import Circuit
from repro.nn import MLP, Adam, Module, Tensor
from repro.placement.layout import Placement
from repro.router import RouterConfig, RoutingGrid
from repro.router.guidance import RoutingGuidance
from repro.router.result import RoutingResult
from repro.simulation import TestbenchConfig
from repro.simulation.metrics import FoMWeights


@dataclass(frozen=True)
class GeniusRouteConfig:
    """GeniusRoute knobs.

    Attributes:
        map_size: guidance map resolution (map_size x map_size).
        latent_dim: VAE latent width.
        hidden_dim: VAE hidden width.
        epochs: VAE training epochs.
        lr: Adam learning rate.
        kl_weight: beta on the KL term.
        cost_contrast: how strongly the decoded map shapes routing cost.
        seed: init/shuffle seed.
    """

    map_size: int = 16
    latent_dim: int = 8
    hidden_dim: int = 64
    epochs: int = 60
    lr: float = 2e-3
    kl_weight: float = 1e-3
    cost_contrast: float = 0.9
    seed: int = 0


class _Vae(Module):
    """MLP VAE over flattened guidance maps."""

    def __init__(self, input_dim: int, cfg: GeniusRouteConfig) -> None:
        rng = np.random.default_rng(cfg.seed)
        self.encoder = MLP([input_dim, cfg.hidden_dim], rng)
        self.mu_head = MLP([cfg.hidden_dim, cfg.latent_dim], rng)
        self.logvar_head = MLP([cfg.hidden_dim, cfg.latent_dim], rng)
        self.decoder = MLP(
            [cfg.latent_dim, cfg.hidden_dim, input_dim], rng,
            final_activation="sigmoid",
        )

    def encode(self, x: Tensor) -> tuple[Tensor, Tensor]:
        hidden = self.encoder(x).softplus()
        return self.mu_head(hidden), self.logvar_head(hidden)

    def decode(self, z: Tensor) -> Tensor:
        return self.decoder(z)


class GeniusRoute:
    """The GeniusRoute-style guidance generator + router wrapper."""

    def __init__(
        self,
        circuit: Circuit,
        placement: Placement,
        tech,
        config: GeniusRouteConfig | None = None,
        router_config: RouterConfig | None = None,
        testbench_config: TestbenchConfig | None = None,
        routing_pitch: float = 0.5,
    ) -> None:
        self.circuit = circuit
        self.placement = placement
        self.tech = tech
        self.config = config or GeniusRouteConfig()
        self.router_config = router_config
        self.testbench_config = testbench_config
        self.routing_pitch = routing_pitch
        self._grid = RoutingGrid(placement, tech, pitch=routing_pitch)
        self.vae: _Vae | None = None
        self.training_seconds = 0.0

    # -- rasterization ---------------------------------------------------------------

    def rasterize(self, result: RoutingResult) -> np.ndarray:
        """Wire-density map of the critical nets, flattened, in [0, 1]."""
        size = self.config.map_size
        grid = self._grid
        density = np.zeros((size, size))
        for net in self.circuit.signal_nets():
            route = result.routes.get(net.name)
            if route is None:
                continue
            for ix, iy, _layer in route.cells():
                mx = min(int(ix * size / max(grid.nx, 1)), size - 1)
                my = min(int(iy * size / max(grid.ny, 1)), size - 1)
                density[mx, my] += 1.0
        peak = density.max()
        if peak > 0:
            density /= peak
        return density.reshape(-1)

    # -- training ------------------------------------------------------------------------

    def fit(self, database: Database) -> None:
        """Train the VAE on the better half of the database layouts."""
        start = time.perf_counter()
        cfg = self.config
        weights = FoMWeights()
        ranked = sorted(database.samples, key=lambda s: weights.fom(s.metrics))
        corpus = ranked[: max(2, len(ranked) // 2)]
        maps = np.stack([self.rasterize(s.result) for s in corpus])

        self.vae = _Vae(maps.shape[1], cfg)
        optimizer = Adam(self.vae.parameters(), lr=cfg.lr)
        rng = np.random.default_rng(cfg.seed)
        for _ in range(cfg.epochs):
            x = Tensor(maps)
            mu, logvar = self.vae.encode(x)
            noise = Tensor(rng.standard_normal(mu.shape))
            z = mu + (logvar * 0.5).exp() * noise
            recon = self.vae.decode(z)
            recon_loss = ((recon - x) * (recon - x)).mean()
            kl = ((mu * mu) + logvar.exp() - logvar - 1.0).mean() * 0.5
            loss = recon_loss + kl * cfg.kl_weight
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        self.training_seconds = time.perf_counter() - start

    # -- inference --------------------------------------------------------------------------

    def generate_map(self, database: Database) -> np.ndarray:
        """Decode the guidance map from the corpus's mean latent code."""
        if self.vae is None:
            raise RuntimeError("call fit() before generate_map()")
        weights = FoMWeights()
        ranked = sorted(database.samples, key=lambda s: weights.fom(s.metrics))
        corpus = ranked[: max(2, len(ranked) // 2)]
        maps = np.stack([self.rasterize(s.result) for s in corpus])
        mu, _ = self.vae.encode(Tensor(maps))
        z_mean = Tensor(mu.data.mean(axis=0, keepdims=True))
        return self.vae.decode(z_mean).numpy().reshape(
            self.config.map_size, self.config.map_size
        )

    def generate_guidance(self, database: Database) -> RoutingGuidance:
        """Per-AP guidance from the decoded 2D map.

        The 2D map carries no direction or layer information (the uniform-
        guidance limitation): every AP gets an isotropic cost scaled down in
        bright map regions.
        """
        guide_map = self.generate_map(database)
        size = self.config.map_size
        grid = self._grid
        guidance = RoutingGuidance()
        contrast = self.config.cost_contrast
        for aps in grid.access_points.values():
            for ap in aps:
                ix, iy, _layer = ap.cell
                mx = min(int(ix * size / max(grid.nx, 1)), size - 1)
                my = min(int(iy * size / max(grid.ny, 1)), size - 1)
                brightness = float(guide_map[mx, my])
                cost = 0.7 + contrast * (1.0 - brightness)
                guidance.set(ap.key, np.full(3, cost))
        return guidance

    # -- end to end --------------------------------------------------------------------------

    def run(self, database: Database) -> tuple[GuidanceSample, float]:
        """Generate guidance and route; returns (sample, inference+route s).

        VAE training time is tracked separately in ``training_seconds``,
        mirroring how the paper reports per-design routing runtime.
        """
        if self.vae is None:
            self.fit(database)
        start = time.perf_counter()
        guidance = self.generate_guidance(database)
        sample = route_and_measure(
            self.circuit, self.placement, self.tech, guidance,
            router_config=self.router_config,
            testbench_config=self.testbench_config,
            routing_pitch=self.routing_pitch,
        )
        return sample, time.perf_counter() - start
