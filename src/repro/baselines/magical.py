"""MagicalRoute baseline [16]: constraint-aware routing without ML guidance.

The same iterative router as AnalogFold's substrate, run with neutral
guidance — it honors design rules and symmetry constraints but has no
performance-driven cost shaping.
"""

from __future__ import annotations

import time

from repro.core.dataset import GuidanceSample, route_and_measure
from repro.netlist.circuit import Circuit
from repro.placement.layout import Placement
from repro.router import RouterConfig
from repro.router.guidance import uniform_guidance
from repro.simulation import TestbenchConfig


def route_magical(
    circuit: Circuit,
    placement: Placement,
    tech,
    router_config: RouterConfig | None = None,
    testbench_config: TestbenchConfig | None = None,
    routing_pitch: float = 0.5,
) -> tuple[GuidanceSample, float]:
    """Route with neutral guidance; returns (sample, wall-clock seconds)."""
    start = time.perf_counter()
    sample = route_and_measure(
        circuit, placement, tech, uniform_guidance(),
        router_config=router_config,
        testbench_config=testbench_config,
        routing_pitch=routing_pitch,
    )
    return sample, time.perf_counter() - start
