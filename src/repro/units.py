"""Unit helpers used across the library.

Internal geometric unit is the micrometer (um).  Electrical quantities use
SI units (ohm, farad, volt, hertz) unless a function name says otherwise.
"""

from __future__ import annotations

import math

# Geometric units ------------------------------------------------------------

NM = 1e-3  # nanometers expressed in micrometers
UM = 1.0
MM = 1e3

# Electrical shorthands ------------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15


def db(ratio: float) -> float:
    """Convert a voltage ratio to decibels (20*log10)."""
    if ratio <= 0.0:
        raise ValueError(f"dB undefined for non-positive ratio {ratio!r}")
    return 20.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert decibels back to a voltage ratio."""
    return 10.0 ** (decibels / 20.0)


def db_power(ratio: float) -> float:
    """Convert a power ratio to decibels (10*log10)."""
    if ratio <= 0.0:
        raise ValueError(f"dB undefined for non-positive ratio {ratio!r}")
    return 10.0 * math.log10(ratio)


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` to the closed interval [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty interval: lo={lo} > hi={hi}")
    return max(lo, min(hi, value))
