"""The run context: hierarchical spans, counters, trace sink, manifest.

A :class:`RunContext` is the single observability handle threaded through
the pipeline.  It carries a run id, emits span records to a JSONL trace
sink, aggregates them into per-stage totals, and owns the run's
:class:`~repro.obs.metrics.MetricsRegistry`.  Three operating modes:

* **disabled** (:data:`NULL_CONTEXT`) — every call is a no-op; hot paths
  pay one attribute check and no ``perf_counter`` reads, so a run without
  ``--trace`` is indistinguishable from the pre-observability pipeline;
* **file-backed** (:meth:`RunContext.to_file`) — spans stream to a JSONL
  trace and :meth:`close` writes the run manifest next to it;
* **recording** (:meth:`RunContext.recording`) — spans buffer in memory.
  Parallel workers record into a per-worker context and ship the buffer
  back with their :class:`~repro.core.dataset.AttemptOutcome`; the parent
  absorbs buffers in submission order (see :meth:`absorb`), so the merged
  trace and all counters are identical for any worker count — the same
  guarantee the checkpoint file already has.

Spans are well-nested per context: ids are assigned at entry, a stack
tracks the open parent, and records are emitted at exit (so a span's
record always appears *after* its children's records in the trace file).
All span timing uses the monotonic ``time.perf_counter`` clock; trace
consumers must compare durations, never absolute wall-clock times.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.metrics import NULL_METRIC, MetricsRegistry

#: Schema version of trace records; bump on incompatible layout changes.
TRACE_VERSION = 1

#: Schema version of the run manifest; bump on incompatible layout changes.
MANIFEST_VERSION = 1


def make_run_id() -> str:
    """A unique-enough run id: wall-clock stamp plus pid."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"run-{stamp}-{os.getpid()}"


@dataclass
class SpanAggregate:
    """Running per-stage totals, updated as span records are emitted.

    The manifest's ``spans`` section is built from these aggregates —
    the *same* records that went to the trace file — so trace-derived
    totals and the manifest always agree exactly.
    """

    count: int = 0
    seconds: float = 0.0
    outcomes: dict[str, int] = field(default_factory=dict)

    def add(self, seconds: float, outcome: str) -> None:
        self.count += 1
        self.seconds += seconds
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        return {"count": self.count, "seconds": self.seconds,
                "outcomes": dict(sorted(self.outcomes.items()))}


class _NullSpan:
    """Span handle of a disabled context; every method is a no-op."""

    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, outcome: str | None = None, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One timed unit of work; emitted as a trace record on exit.

    Returned by :meth:`RunContext.span` as a context manager.  Call
    :meth:`set` inside the block to record the outcome (default ``ok``;
    an exception leaving the block records ``error``) and attributes.
    When constructed with a ``timer``, the measured duration also feeds
    ``timer.add(name, seconds)`` — one clock read serving both the
    trace and the :class:`~repro.perf.timing.StageTimer` perf record.
    """

    __slots__ = ("_ctx", "name", "timer", "attrs", "outcome", "seconds",
                 "span_id", "parent_id", "_start")

    def __init__(self, ctx: "RunContext", name: str,
                 timer: Any = None, attrs: dict[str, Any] | None = None):
        self._ctx = ctx
        self.name = name
        self.timer = timer
        self.attrs = dict(attrs) if attrs else {}
        self.outcome: str | None = None
        self.seconds = 0.0
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self._start = 0.0

    def set(self, outcome: str | None = None, **attrs: Any) -> None:
        """Record the span outcome and/or extra attributes."""
        if outcome is not None:
            self.outcome = outcome
        if attrs:
            self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        ctx = self._ctx
        if ctx.enabled:
            self.span_id = ctx._allocate_span_id()
            self.parent_id = ctx._stack[-1] if ctx._stack else None
            ctx._stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> bool:
        self.seconds = time.perf_counter() - self._start
        if self.timer is not None:
            self.timer.add(self.name, self.seconds)
        ctx = self._ctx
        if ctx.enabled:
            ctx._stack.pop()
            outcome = self.outcome
            if outcome is None:
                outcome = "error" if exc_type is not None else "ok"
            ctx._emit_span_record(
                name=self.name, span_id=self.span_id,
                parent_id=self.parent_id, start=self._start,
                seconds=self.seconds, outcome=outcome, attrs=self.attrs,
            )
        return False


class RunContext:
    """Observability handle of one pipeline run.

    Args:
        run_id: stable identifier stamped on every record (generated
            when omitted).
        trace_path: JSONL trace file; ``None`` keeps records in memory.
        manifest_path: where :meth:`close` writes the run manifest;
            defaults to ``<trace_path stem>.manifest.json`` when a trace
            file is given, else nowhere.
        enabled: ``False`` builds a permanent no-op context.
    """

    def __init__(
        self,
        run_id: str | None = None,
        trace_path: str | Path | None = None,
        manifest_path: str | Path | None = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.run_id = run_id or (make_run_id() if enabled else "disabled")
        self.metrics = MetricsRegistry()
        self.aggregates: dict[str, SpanAggregate] = {}
        self.trace_path = Path(trace_path) if trace_path else None
        if manifest_path is not None:
            self.manifest_path: Path | None = Path(manifest_path)
        elif self.trace_path is not None:
            self.manifest_path = self.trace_path.with_suffix(
                ".manifest.json")
        else:
            self.manifest_path = None
        self._stack: list[int] = []
        self._next_id = 1
        self._events: list[dict[str, Any]] = []
        self._handle = None
        self._closed = False
        if self.trace_path is not None and enabled:
            self.trace_path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.trace_path.open("w", encoding="utf-8")
            self._write_json({
                "kind": "header", "version": TRACE_VERSION,
                "run_id": self.run_id,
                # Deliberately wall-clock: created_unix stamps when the
                # run happened for humans; durations never derive from it.
                "created_unix": time.time(),  # repro-lint: disable=CLK001 -- manifest timestamp
            })

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def disabled(cls) -> "RunContext":
        """The shared no-op context (see :data:`NULL_CONTEXT`)."""
        return NULL_CONTEXT

    @classmethod
    def recording(cls, run_id: str | None = None) -> "RunContext":
        """An in-memory context whose records are drained and absorbed."""
        return cls(run_id=run_id or "recording", trace_path=None)

    @classmethod
    def to_file(cls, trace_path: str | Path,
                run_id: str | None = None,
                manifest_path: str | Path | None = None) -> "RunContext":
        """A file-backed context streaming spans to ``trace_path``."""
        return cls(run_id=run_id, trace_path=trace_path,
                   manifest_path=manifest_path)

    # -- spans ----------------------------------------------------------------------

    def span(self, name: str, timer: Any = None, **attrs: Any):
        """A context manager timing one unit of work.

        When the context is disabled and no ``timer`` rides along, the
        shared :data:`NULL_SPAN` is returned — no allocation, no clock
        read.  A ``timer`` forces real timing (the perf record needs it)
        but still skips record emission on a disabled context.
        """
        if not self.enabled and timer is None:
            return NULL_SPAN
        return Span(self, name, timer=timer, attrs=attrs)

    def emit_span(self, name: str, seconds: float, outcome: str = "ok",
                  **attrs: Any) -> None:
        """Emit a pre-timed span record (no clock read of its own).

        For callers that already measured the duration — e.g. batched
        relaxation amortizes one wave's wall time over its restarts —
        so the trace reuses the caller's numbers instead of re-timing.
        """
        if not self.enabled:
            return
        span_id = self._allocate_span_id()
        parent_id = self._stack[-1] if self._stack else None
        self._emit_span_record(name=name, span_id=span_id,
                               parent_id=parent_id,
                               start=time.perf_counter(), seconds=seconds,
                               outcome=outcome, attrs=attrs)

    # -- metrics --------------------------------------------------------------------

    def counter(self, name: str, **labels: Any):
        if not self.enabled:
            return NULL_METRIC
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any):
        if not self.enabled:
            return NULL_METRIC
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: Any):
        if not self.enabled:
            return NULL_METRIC
        return self.metrics.histogram(name, **labels)

    # -- cross-process merge ----------------------------------------------------------

    def drain_events(self) -> list[dict[str, Any]]:
        """Remove and return buffered records (recording contexts only)."""
        events, self._events = self._events, []
        return events

    def counter_values(self) -> dict[str, int]:
        return self.metrics.counter_values()

    def absorb(self, events: list[dict[str, Any]],
               counters: dict[str, int] | None = None) -> None:
        """Merge a recording context's output into this one.

        Span ids are remapped into this context's id space and orphan
        roots are re-parented under the currently open span, preserving
        well-nestedness.  Because the parent absorbs worker buffers in
        submission order, the merged trace is identical for any worker
        count (timing values aside, which are measured per process).
        """
        if not self.enabled:
            return
        spans = [e for e in events if e.get("kind") == "span"]
        # Records are emitted at span *exit*, so children precede their
        # parents in the buffer; allocate every new id up front so
        # child->parent links resolve regardless of order.
        id_map = {event["span_id"]: self._allocate_span_id()
                  for event in spans if event.get("span_id") is not None}
        for event in spans:
            old_parent = event.get("parent_id")
            if old_parent in id_map:
                parent = id_map[old_parent]
            else:
                parent = self._stack[-1] if self._stack else None
            self._emit_span_record(
                name=event["name"], span_id=id_map.get(event.get("span_id")),
                parent_id=parent,
                start=event.get("start", 0.0), seconds=event["seconds"],
                outcome=event["outcome"], attrs=event.get("attrs", {}),
            )
        if counters:
            self.metrics.absorb_counters(counters)

    # -- emission -------------------------------------------------------------------

    def _allocate_span_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _emit_span_record(self, name: str, span_id: int | None,
                          parent_id: int | None, start: float,
                          seconds: float, outcome: str,
                          attrs: dict[str, Any]) -> None:
        self.aggregates.setdefault(name, SpanAggregate()).add(
            seconds, outcome)
        record: dict[str, Any] = {
            "kind": "span", "run_id": self.run_id, "span_id": span_id,
            "parent_id": parent_id, "name": name, "start": start,
            "seconds": seconds, "outcome": outcome,
        }
        if attrs:
            record["attrs"] = {k: attrs[k] for k in sorted(attrs)}
        if self._handle is not None:
            self._write_json(record)
        else:
            self._events.append(record)

    def _write_json(self, record: dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True,
                                      default=_json_default) + "\n")

    # -- manifest -------------------------------------------------------------------

    def manifest(self) -> dict[str, Any]:
        """The run manifest: metrics plus per-stage span aggregates."""
        return {
            "kind": "manifest",
            "version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "trace": str(self.trace_path) if self.trace_path else None,
            "spans": {name: self.aggregates[name].to_dict()
                      for name in sorted(self.aggregates)},
            **self.metrics.to_dict(),
        }

    def write_manifest(self, path: str | Path | None = None) -> Path | None:
        """Write the manifest as pretty JSON; returns the path."""
        target = Path(path) if path is not None else self.manifest_path
        if target is None:
            return None
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.manifest(), indent=2, sort_keys=True,
                       default=_json_default) + "\n",
            encoding="utf-8")
        return target

    def close(self) -> None:
        """Flush and close the trace sink, writing the manifest."""
        if self._closed or not self.enabled:
            return
        self._closed = True
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self.write_manifest()

    def __enter__(self) -> "RunContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _json_default(value: Any) -> Any:
    """Serialize numpy scalars and other oddballs as plain Python."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def iter_trace(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield every record of a JSONL trace file."""
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


#: The shared no-op context; safe as a default everywhere.
NULL_CONTEXT = RunContext(enabled=False)
