"""Typed metrics: counters, gauges, and histograms with flat-name labels.

A metric is addressed by a name plus optional labels, rendered into a
single flat string key (``retry_total{stage=routing}``) so serialized
manifests stay plain JSON objects and cross-process merging is a dict
merge.  Counters are the only metric type that crosses process
boundaries: parallel workers return their counter values with each
:class:`~repro.core.dataset.AttemptOutcome` and the parent merges them in
submission order, so totals are identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def flat_name(name: str, labels: dict[str, Any] | None = None) -> str:
    """Render ``name`` plus labels into the canonical flat key.

    Labels are sorted so the key is independent of call-site order.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing integer metric."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value metric (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """A streaming summary of observed values (count/sum/min/max)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge_summary(self, count: int, total: float,
                      min_value: float, max_value: float) -> None:
        """Fold a pre-aggregated (count, sum, min, max) summary in.

        Lets producers that already aggregate locally (e.g. the router's
        per-net frontier-batch window, or a worker process) report without
        replaying every observation.
        """
        if count <= 0:
            return
        self.count += int(count)
        self.total += float(total)
        if min_value < self.min:
            self.min = float(min_value)
        if max_value > self.max:
            self.max = float(max_value)

    def to_dict(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max,
                "mean": self.total / self.count}


class _NullMetric:
    """Shared no-op metric handed out by a disabled registry/context."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def merge_summary(self, count: int, total: float,
                      min_value: float, max_value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


@dataclass
class MetricsRegistry:
    """Holds every metric of one run, keyed by flat name."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str, **labels: Any) -> Counter:
        key = flat_name(name, labels)
        metric = self.counters.get(key)
        if metric is None:
            metric = self.counters[key] = Counter(key)
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = flat_name(name, labels)
        metric = self.gauges.get(key)
        if metric is None:
            metric = self.gauges[key] = Gauge(key)
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = flat_name(name, labels)
        metric = self.histograms.get(key)
        if metric is None:
            metric = self.histograms[key] = Histogram(key)
        return metric

    def counter_values(self) -> dict[str, int]:
        """Counter totals as a plain mergeable dict (sorted keys)."""
        return {key: self.counters[key].value
                for key in sorted(self.counters)}

    def absorb_counters(self, values: dict[str, int]) -> None:
        """Merge counter totals from another registry (e.g. a worker)."""
        for key, value in values.items():
            metric = self.counters.get(key)
            if metric is None:
                metric = self.counters[key] = Counter(key)
            metric.value += int(value)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of every metric, keys sorted."""
        return {
            "counters": self.counter_values(),
            "gauges": {key: self.gauges[key].value
                       for key in sorted(self.gauges)},
            "histograms": {key: self.histograms[key].to_dict()
                           for key in sorted(self.histograms)},
        }
