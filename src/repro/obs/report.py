"""Trace-file analytics: per-stage breakdown tables and manifest checks.

Works on any trace a :class:`~repro.obs.context.RunContext` produced::

    PYTHONPATH=src python -m repro.obs.report runs/trace.jsonl
    PYTHONPATH=src python -m repro.obs.report runs/trace.jsonl \\
        --verify-manifest runs/trace.manifest.json

The second form recomputes per-stage totals from the trace records and
fails (exit 1) unless they match the manifest exactly — the invariant
the pipeline guarantees by building both from the same emission stream.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterable

from repro.obs.context import SpanAggregate, iter_trace

#: Outcomes that get their own report column; others fold into "other".
_OUTCOME_COLUMNS = ("ok", "retried", "skipped", "diverged")


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """All records of a JSONL trace file, in emission order."""
    return list(iter_trace(path))


def aggregate_spans(records: Iterable[dict[str, Any]]
                    ) -> dict[str, SpanAggregate]:
    """Per-stage totals recomputed from raw span records."""
    out: dict[str, SpanAggregate] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        out.setdefault(record["name"], SpanAggregate()).add(
            float(record["seconds"]), record["outcome"])
    return out


def render_report(aggregates: dict[str, SpanAggregate],
                  counters: dict[str, int] | None = None) -> str:
    """A fixed-width per-stage breakdown table (plus counters when given)."""
    headers = ["stage", "count", *_OUTCOME_COLUMNS, "other",
               "total_s", "mean_ms"]
    rows: list[list[str]] = []
    for name in sorted(aggregates):
        agg = aggregates[name]
        known = {o: agg.outcomes.get(o, 0) for o in _OUTCOME_COLUMNS}
        other = agg.count - sum(known.values())
        mean_ms = 1000.0 * agg.seconds / agg.count if agg.count else 0.0
        rows.append([name, str(agg.count),
                     *[str(known[o]) for o in _OUTCOME_COLUMNS],
                     str(other), f"{agg.seconds:.4f}", f"{mean_ms:.2f}"])
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    lines = [
        "  ".join(h.ljust(widths[i]) if i == 0 else h.rjust(widths[i])
                  for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)))
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for key in sorted(counters):
            lines.append(f"  {key.ljust(width)}  {counters[key]}")
    return "\n".join(lines)


def verify_manifest(records: Iterable[dict[str, Any]],
                    manifest: dict[str, Any]) -> list[str]:
    """Mismatches between trace-derived totals and a manifest (empty = ok)."""
    problems: list[str] = []
    derived = {name: agg.to_dict()
               for name, agg in aggregate_spans(records).items()}
    recorded = manifest.get("spans", {})
    for name in sorted(set(derived) | set(recorded)):
        if name not in recorded:
            problems.append(f"stage {name!r} in trace but not in manifest")
        elif name not in derived:
            problems.append(f"stage {name!r} in manifest but not in trace")
        elif derived[name] != recorded[name]:
            problems.append(
                f"stage {name!r} differs: trace {derived[name]} "
                f"!= manifest {recorded[name]}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.report",
        description="Render a per-stage breakdown from a JSONL trace.")
    parser.add_argument("trace", help="trace file written with --trace")
    parser.add_argument("--verify-manifest", metavar="PATH",
                        help="check trace-derived totals against this "
                             "run manifest; exit 1 on any mismatch")
    args = parser.parse_args(argv)

    records = load_trace(args.trace)
    header = next((r for r in records if r.get("kind") == "header"), None)
    if header is not None:
        print(f"run {header.get('run_id')} "
              f"(trace version {header.get('version')})")
    print(render_report(aggregate_spans(records)))

    if args.verify_manifest:
        manifest = json.loads(
            Path(args.verify_manifest).read_text(encoding="utf-8"))
        problems = verify_manifest(records, manifest)
        if problems:
            print("MANIFEST MISMATCH:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print("manifest matches trace-derived totals")
    return 0


if __name__ == "__main__":
    sys.exit(main())
