"""Structured observability: spans, metrics, and run manifests.

See ``docs/OBSERVABILITY.md`` for the trace schema, metric names, and
example report output.  The one-line tour:

* :class:`RunContext` — the handle threaded through the pipeline;
  :data:`NULL_CONTEXT` is the zero-overhead disabled default.
* :class:`MetricsRegistry` — typed counters/gauges/histograms with
  flat-name labels (``retry_total{stage=routing}``).
* :mod:`repro.obs.report` — renders per-stage breakdown tables from any
  trace file and verifies trace/manifest agreement.
"""

from repro.obs.context import (
    MANIFEST_VERSION,
    NULL_CONTEXT,
    NULL_SPAN,
    RunContext,
    Span,
    SpanAggregate,
    TRACE_VERSION,
    iter_trace,
    make_run_id,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    flat_name,
)
from repro.obs.report import (
    aggregate_spans,
    load_trace,
    render_report,
    verify_manifest,
)

__all__ = [
    "MANIFEST_VERSION",
    "NULL_CONTEXT",
    "NULL_METRIC",
    "NULL_SPAN",
    "TRACE_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunContext",
    "Span",
    "SpanAggregate",
    "aggregate_spans",
    "flat_name",
    "iter_trace",
    "load_trace",
    "make_run_id",
    "render_report",
    "verify_manifest",
]
